// Randomized configuration fuzzing: many (machine shape, workload, scheme,
// supply) combinations drawn from a seeded RNG, each checked against global
// invariants the simulator must never violate.  Every run also carries the
// semantics checker, so each fuzzed configuration is validated cycle by
// cycle against the paper's scheduling rules, not just by end-of-run
// counters.  Reproduce any seed with VASIM_FUZZ_SEEDS=<seed> (fuzz_util.hpp).
#include <gtest/gtest.h>

#include "src/check/semantics.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/core/runner.hpp"
#include "src/workload/trace_generator.hpp"
#include "tests/fuzz_util.hpp"

namespace vasim::cpu {
namespace {

class FuzzSweep : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzSweep, InvariantsHoldUnderRandomConfiguration) {
  Pcg32 rng(GetParam(), 0xf022ULL);

  // Random machine shape.
  CoreConfig cfg;
  cfg.issue_width = 1 + static_cast<int>(rng.next_below(8));
  cfg.fetch_width = cfg.issue_width;
  cfg.dispatch_width = cfg.issue_width;
  cfg.commit_width = cfg.issue_width;
  cfg.rob_entries = 16 << rng.next_below(4);   // 16..128
  cfg.iq_entries = std::min(cfg.rob_entries, 8 << static_cast<int>(rng.next_below(3)));
  cfg.lq_entries = 8 + static_cast<int>(rng.next_below(24));
  cfg.sq_entries = 8 + static_cast<int>(rng.next_below(24));
  cfg.simple_alus = 1 + static_cast<int>(rng.next_below(4));
  cfg.load_ports = 1 + static_cast<int>(rng.next_below(2));
  cfg.model_wrong_path = rng.next_bool(0.3);
  cfg.l2_next_line_prefetch = rng.next_bool(0.3);

  // Random workload and scheme.
  const auto profiles = workload::spec2006_profiles();
  const auto prof = profiles[rng.next_below(static_cast<u32>(profiles.size()))];
  const auto schemes = core::comparative_schemes();
  SchemeConfig scheme = schemes[rng.next_below(static_cast<u32>(schemes.size()))];
  if (rng.next_bool(0.3)) scheme.recovery = RecoveryModel::kSquashRefetch;
  if (rng.next_bool(0.25)) scheme.inorder_fault_scale = 0.3;
  const double vdd = rng.next_bool(0.5) ? 0.97 : 1.04;

  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                               prof.fr_low_pct / 100.0 * prof.fr_calib_low};
  const timing::FaultModel fm(pcfg, vdd);
  core::TimingErrorPredictor tep({}, &fm.environment());

  workload::TraceGenerator gen(prof);
  Pipeline p(cfg, scheme, &gen, &fm, scheme.use_predictor ? &tep : nullptr);
  check::SemanticsChecker checker(cfg, scheme);
  checker.attach(p);
  const u64 target = 6000;
  const PipelineResult r = p.run(target, 3000);

  // 0. The semantics checker observed the whole run and found no violation
  //    of the paper's scheduling rules.
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks(), 0u);

  // --- invariants -----------------------------------------------------------
  // 1. Exactly the requested instructions commit.
  EXPECT_EQ(r.committed, target);
  EXPECT_EQ(r.stats.count("ev.commit"), target);
  // 2. The machine makes progress within its structural ceiling.
  EXPECT_GT(r.ipc(), 0.01);
  EXPECT_LE(r.ipc(), static_cast<double>(cfg.issue_width) + 1e-9);
  // 3. Fault accounting is conservative: handled faults never exceed actual.
  const u64 actual = r.stats.count("fault.actual");
  EXPECT_LE(r.stats.count("fault.handled"), actual);
  // 4. Predictions imply a predictor-based scheme.
  if (!scheme.use_predictor) {
    EXPECT_EQ(r.stats.count("fault.predicted"), 0u);
    EXPECT_EQ(r.stats.count("fault.handled"), 0u);
  }
  // 5. EP stalls only under the EP scheme.
  if (!scheme.error_padding && scheme.recovery == RecoveryModel::kSquashRefetch &&
      scheme.inorder_fault_scale == 0.0) {
    EXPECT_EQ(r.stats.count("ep.stalls"), r.stats.count("ev.stall_cycles"));
  }
  // 6. Committed-path fault rate is bounded by the dynamic fault count plus
  //    safe re-executions.
  EXPECT_LE(r.stats.count("fault.committed_faulty"), actual + r.stats.count("fault.replays"));
  // 7. Select accounting: issued instructions match regread events.
  EXPECT_EQ(r.stats.count("ev.select"), r.stats.count("ev.regread"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::ValuesIn(vasim::fuzzutil::seeds("config", 1, 20)));

}  // namespace
}  // namespace vasim::cpu
