
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_pred.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/branch_pred.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/branch_pred.cpp.o.d"
  "/root/repo/src/cpu/cache.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/cache.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/cache.cpp.o.d"
  "/root/repo/src/cpu/fu_pool.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/fu_pool.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/fu_pool.cpp.o.d"
  "/root/repo/src/cpu/inorder.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/inorder.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/inorder.cpp.o.d"
  "/root/repo/src/cpu/observer.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/observer.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/observer.cpp.o.d"
  "/root/repo/src/cpu/pipeline.cpp" "src/cpu/CMakeFiles/vasim_cpu.dir/pipeline.cpp.o" "gcc" "src/cpu/CMakeFiles/vasim_cpu.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vasim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vasim_timing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
