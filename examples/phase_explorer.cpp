// Example: SimPoint-style phase selection (Section 4.2 methodology).
//
// Splices a two-benchmark composite stream (mimicking program phases),
// selects representative phases by clustering basic-block vectors, and
// shows that simulating only the representatives reproduces the full-stream
// IPC at a fraction of the simulated instructions.
#include <iostream>
#include <memory>

#include "src/common/table.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/simpoint.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

/// Alternates between two benchmark generators every `phase_len`
/// instructions, offsetting the second benchmark's PCs to keep them
/// distinguishable.
class CompositeSource final : public isa::InstructionSource {
 public:
  CompositeSource(const workload::BenchmarkProfile& a, const workload::BenchmarkProfile& b,
                  u64 phase_len)
      : a_(a), b_(b), phase_len_(phase_len) {}

  bool next(isa::DynInst& out) override {
    const bool use_b = (n_++ / phase_len_) % 2 == 1;
    workload::TraceGenerator& gen = use_b ? b_ : a_;
    gen.next(out);
    if (use_b) {
      out.pc += kOffset;
      out.next_pc += kOffset;
    }
    return true;
  }
  std::string name() const override { return "composite"; }

 private:
  static constexpr Pc kOffset = 0x100000;
  workload::TraceGenerator a_;
  workload::TraceGenerator b_;
  u64 phase_len_;
  u64 n_ = 0;
};

double ipc_of(isa::InstructionSource& src, u64 instructions) {
  cpu::CoreConfig cfg;
  cpu::Pipeline pipe(cfg, cpu::scheme_fault_free(), &src, nullptr, nullptr);
  return pipe.run(instructions).ipc();
}

}  // namespace

int main() {
  using namespace vasim;
  const auto sjeng = workload::spec2006_profile("sjeng");
  const auto mcf = workload::spec2006_profile("mcf");
  constexpr u64 kPhaseLen = 20'000;

  // 1. Cluster interval BBVs.
  CompositeSource analysis_src(sjeng, mcf, kPhaseLen);
  workload::SimPointConfig spc;
  spc.interval_len = 5'000;
  spc.num_intervals = 60;
  spc.clusters = 2;
  const workload::SimPointResult sp = workload::select_phases(analysis_src, spc);

  std::cout << "SimPoint phase selection over a sjeng/mcf composite stream\n"
            << "intervals analyzed: " << sp.intervals_analyzed << ", phases found: "
            << sp.phases.size() << "\n\n";
  TextTable t({"phase", "representative-interval", "weight"});
  for (std::size_t i = 0; i < sp.phases.size(); ++i) {
    t.add_row({std::to_string(i), std::to_string(sp.phases[i].interval_index),
               TextTable::fmt(sp.phases[i].weight)});
  }
  std::cout << t.render() << "\n";

  // 2. Full-stream IPC.
  CompositeSource full_src(sjeng, mcf, kPhaseLen);
  const double full_ipc = ipc_of(full_src, 300'000);

  // 3. Weighted IPC over representative intervals only: fast-forward to each
  //    representative and simulate one interval.
  double weighted_ipc = 0.0;
  for (const auto& phase : sp.phases) {
    CompositeSource src(sjeng, mcf, kPhaseLen);
    isa::DynInst skip;
    for (u64 i = 0; i < static_cast<u64>(phase.interval_index) * spc.interval_len; ++i) {
      src.next(skip);
    }
    weighted_ipc += phase.weight * ipc_of(src, spc.interval_len);
  }

  std::cout << "full-stream IPC (300k instrs):      " << TextTable::fmt(full_ipc) << "\n"
            << "phase-weighted IPC ("
            << sp.phases.size() * spc.interval_len << " instrs): " << TextTable::fmt(weighted_ipc)
            << "\n"
            << "error: "
            << TextTable::fmt((weighted_ipc / full_ipc - 1.0) * 100.0, 1) << "%\n"
            << "\nRepresentative phases reproduce whole-stream behaviour at a fraction\n"
            << "of the simulation cost -- the reason the paper simulates SimPoint\n"
            << "phases of 1M instructions instead of whole SPEC runs.\n";
  return 0;
}
