// Timing Error Predictor (Section 2.1.1).
//
// Combines the Most-Recent-Entry predictor of Xin et al. [13] with the
// Timing Violation Predictor of Roy et al. [12]: a tagged table indexed by
// PC bits XOR recent branch outcomes, a 2-byte tag, a 2-bit saturating
// counter per entry (non-zero => predict a violation), a faulty-pipe-stage
// field, and a criticality field fed by the CDL (Section 3.5.2).  Thermal
// and voltage sensors gate weak predictions: when conditions do not favour
// timing errors, only saturated entries predict.
#ifndef VASIM_CORE_TEP_HPP
#define VASIM_CORE_TEP_HPP

#include <vector>

#include "src/cpu/hooks.hpp"
#include "src/snap/io.hpp"
#include "src/timing/sensors.hpp"

namespace vasim::core {

/// TEP geometry and behaviour.
struct TepConfig {
  int entries = 4096;        ///< predictor table entries (power of two)
  int history_bits = 8;      ///< branch-outcome bits folded into the index
  u8 counter_max = 3;        ///< 2-bit saturating counter
  u8 counter_on_alloc = 2;   ///< counter value for a newly learned fault
  bool sensor_gating = true; ///< weak entries predict only in hot/droopy epochs
};

/// The predictor.  Implements the pipeline-facing FaultPredictor interface.
class TimingErrorPredictor final : public cpu::FaultPredictor {
 public:
  /// `env` (nullable) provides the sensor inputs; non-owning.
  explicit TimingErrorPredictor(const TepConfig& cfg = {},
                                const timing::Environment* env = nullptr);

  cpu::FaultPrediction predict(Pc pc, u64 history, Cycle now) override;
  void train(Pc pc, u64 history, bool faulty, timing::OooStage stage) override;
  void mark_critical(Pc pc, u64 history, bool critical) override;

  [[nodiscard]] u64 lookups() const { return lookups_; }
  [[nodiscard]] u64 predictions() const { return predictions_; }
  [[nodiscard]] u64 allocations() const { return allocations_; }
  [[nodiscard]] const TepConfig& config() const { return cfg_; }

  /// Storage cost in bits (tag + counter + stage + criticality per entry),
  /// used by the area/power study.
  [[nodiscard]] u64 storage_bits() const;

  /// Serializes the table and tally counters (sensors are stateless
  /// functions of the environment; the environment is reconstructed from
  /// config on restore).
  void save_state(snap::Writer& w) const {
    w.put_u64(table_.size());
    for (const Entry& e : table_) {
      w.put_u16(e.tag);
      w.put_u8(e.counter);
      w.put_u8(e.stage);
      w.put_u8(e.crit_counter);
      w.put_bool(e.valid);
    }
    w.put_u64(lookups_);
    w.put_u64(predictions_);
    w.put_u64(allocations_);
  }
  void restore_state(snap::Reader& r) {
    if (r.get_u64() != table_.size()) throw snap::SnapshotError("tep table size mismatch");
    for (Entry& e : table_) {
      e.tag = r.get_u16();
      e.counter = r.get_u8();
      e.stage = r.get_u8();
      e.crit_counter = r.get_u8();
      e.valid = r.get_bool();
    }
    lookups_ = r.get_u64();
    predictions_ = r.get_u64();
    allocations_ = r.get_u64();
  }

 private:
  struct Entry {
    u16 tag = 0;
    u8 counter = 0;
    u8 stage = 0;
    u8 crit_counter = 0;  ///< 2-bit criticality confidence
    bool valid = false;
  };

  [[nodiscard]] std::size_t index_of(Pc pc, u64 history) const;
  [[nodiscard]] static u16 tag_of(Pc pc) { return static_cast<u16>(pc >> 2); }

  TepConfig cfg_;
  const timing::Environment* env_;
  timing::ThermalSensor thermal_;
  timing::VoltageSensor voltage_;
  std::vector<Entry> table_;
  u64 lookups_ = 0;
  u64 predictions_ = 0;
  u64 allocations_ = 0;
};

}  // namespace vasim::core

#endif  // VASIM_CORE_TEP_HPP
