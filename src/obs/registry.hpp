// Zero-lookup metrics registry.
//
// A Registry interns metric names once, at registration time, and hands back
// small handles (Counter = u64*, Gauge = double*) whose updates are a single
// pointer bump -- no per-event string hashing or std::map walk.  The hot
// simulation loops (Pipeline, FuPool, MemoryHierarchy) pre-register their
// counters at construction and touch only handles per cycle; at run end the
// registry exports back into the existing StatSet under identical names, so
// RunResult consumers, the JSON sinks and the tier-1 tests are oblivious to
// the storage change.
//
// Value storage is a std::deque<u64>: addresses are stable for the life of
// the registry (handles never dangle) and values sit densely packed in the
// deque's chunked blocks, so a run's working set of counters spans a handful
// of cache lines instead of a map node per name.
//
// Not thread-safe: one Registry per Pipeline, which is single-threaded by
// construction (the sweep engine parallelizes across pipelines, never within
// one).
#ifndef VASIM_OBS_REGISTRY_HPP
#define VASIM_OBS_REGISTRY_HPP

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/snap/io.hpp"

namespace vasim::obs {

class Registry;

/// Monotonic counter handle: one pointer bump per increment.  Default
/// constructed handles are invalid and must not be incremented; Registry is
/// the only way to obtain a valid one.
class Counter {
 public:
  Counter() = default;
  void inc(u64 delta = 1) { *v_ += delta; }
  [[nodiscard]] u64 value() const { return *v_; }
  [[nodiscard]] bool valid() const { return v_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(u64* v) : v_(v) {}
  u64* v_ = nullptr;
};

/// Scalar gauge handle (last-write-wins double).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) { *v_ = v; }
  void add(double v) { *v_ += v; }
  [[nodiscard]] double value() const { return *v_; }
  [[nodiscard]] bool valid() const { return v_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* v) : v_(v) {}
  double* v_ = nullptr;
};

/// Interned-name metric registry.  Registration is idempotent: asking for an
/// existing name returns a handle to the same storage, so two components can
/// share a counter by name.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;  // handles would alias the original
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) counter `name`.  O(log n) once, never on the hot
  /// path.
  Counter counter(std::string_view name);

  /// Registers (or finds) gauge `name`.
  Gauge gauge(std::string_view name);

  /// Registers (or finds) histogram `name` over [lo, hi) with `buckets`
  /// fixed-width bins.  The pointer stays valid for the registry's life;
  /// geometry arguments are ignored when the name already exists.
  Histogram* histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  /// Counter value by name; 0 when never registered.
  [[nodiscard]] u64 counter_value(std::string_view name) const;

  /// Exports into `s`: every non-zero counter via StatSet::inc (matching the
  /// historical create-on-first-increment semantics), every gauge via set,
  /// and every non-empty histogram as <name>.mean / <name>.p50 / <name>.p95 /
  /// <name>.p99 scalars.
  void export_to(StatSet& s) const;

  /// Zeroes every counter and gauge (histograms are re-created).  Handles
  /// stay valid.
  void reset();

  /// Serializes every counter and gauge value, keyed by name.  Histograms
  /// carry no snapshot state here (no pipeline registers any); save_state
  /// throws if one holds samples rather than silently dropping them.
  void save_state(snap::Writer& w) const;

  /// Restores values into already-registered metrics, matched by name.
  /// Throws if a saved name is missing: the restoring side must have
  /// registered the same metric set (same config, same code version) before
  /// calling this.  Handles stay valid.
  void restore_state(snap::Reader& r);

  [[nodiscard]] std::size_t num_counters() const { return counter_names_.size(); }

  /// Counter name / value by registration index: the enumeration surface the
  /// timeline sampler freezes its column set from.
  [[nodiscard]] const std::string& counter_name(std::size_t i) const {
    return counter_names_[i];
  }
  [[nodiscard]] u64 counter_at(std::size_t i) const { return counter_values_[i]; }

 private:
  // Deques give pointer stability; parallel name vectors keep insertion
  // order for export without touching the value storage.
  std::deque<u64> counter_values_;
  std::vector<std::string> counter_names_;
  std::map<std::string, u64*, std::less<>> counter_index_;

  std::deque<double> gauge_values_;
  std::vector<std::string> gauge_names_;
  std::map<std::string, double*, std::less<>> gauge_index_;

  std::deque<Histogram> histograms_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, Histogram*, std::less<>> histogram_index_;
};

}  // namespace vasim::obs

#endif  // VASIM_OBS_REGISTRY_HPP
