// Versioned, checksummed chunk container for simulation snapshots.
//
// File layout (all little-endian):
//
//   offset  size  field
//   0       8     magic "VASIMSNP"
//   8       4     container format version (kFormatVersion)
//   12      4     endianness marker 0x0A0B0C0D (catches a writer that dumped
//                 raw host bytes instead of using snap::Writer)
//   16      4     chunk count
//   then per chunk:
//           4     tag (four-cc, e.g. "META"; see chunk_tag)
//           4     chunk payload version
//           8     payload size in bytes
//           4     CRC-32 of the payload
//           n     payload bytes
//
// Forward compatibility: readers iterate the chunks they understand by tag
// and MUST ignore tags they do not recognize (skip-unknown rule), so a newer
// writer can add chunks without breaking old readers.  A reader that needs a
// chunk and cannot find it throws.  Corruption is never tolerated: magic,
// endianness, declared sizes, and every chunk CRC are verified up front by
// read_snapshot_file.
#ifndef VASIM_SNAP_FORMAT_HPP
#define VASIM_SNAP_FORMAT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/snap/io.hpp"

namespace vasim::snap {

/// Container format version.  Bump only on layout changes to the header or
/// chunk framing; payload evolution goes through per-chunk versions.
inline constexpr u32 kFormatVersion = 1;

/// File magic, first 8 bytes of every snapshot.
inline constexpr char kMagic[8] = {'V', 'A', 'S', 'I', 'M', 'S', 'N', 'P'};

/// Endianness marker as stored (little-endian) in the header.
inline constexpr u32 kEndianMarker = 0x0A0B0C0Du;

/// Compile-time four-cc: chunk_tag("META") == 'M' | 'E'<<8 | ...
constexpr u32 chunk_tag(const char (&s)[5]) {
  return static_cast<u32>(static_cast<unsigned char>(s[0])) |
         (static_cast<u32>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<u32>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<u32>(static_cast<unsigned char>(s[3])) << 24);
}

/// Renders a tag back to 4 characters ('.' for non-printable bytes).
std::string tag_name(u32 tag);

/// One tagged payload.
struct Chunk {
  u32 tag = 0;
  u32 version = 1;
  std::vector<unsigned char> payload;
};

/// An ordered set of chunks -- the in-memory snapshot.  Warm-start sweep
/// sharing passes Snapshot objects around without ever touching disk; the
/// CLI persists them with write_snapshot_file.
class Snapshot {
 public:
  void add(u32 tag, u32 version, std::vector<unsigned char> payload) {
    chunks_.push_back(Chunk{tag, version, std::move(payload)});
  }
  void add(u32 tag, u32 version, Writer&& w) { add(tag, version, w.take()); }

  /// First chunk with `tag`, or nullptr (caller decides whether absence is
  /// an error).
  [[nodiscard]] const Chunk* find(u32 tag) const;

  /// Like find, but absence throws with the tag spelled out.
  [[nodiscard]] const Chunk& require(u32 tag) const;

  [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }

 private:
  std::vector<Chunk> chunks_;
};

/// Serializes to the on-disk layout documented above.
std::vector<unsigned char> encode_snapshot(const Snapshot& s);

/// Parses and fully validates an encoded snapshot (magic, version,
/// endianness, sizes, every CRC).  Throws SnapshotError on any defect.
Snapshot decode_snapshot(const unsigned char* data, std::size_t n);

void write_snapshot_file(const std::string& path, const Snapshot& s);
Snapshot read_snapshot_file(const std::string& path);

/// Per-chunk diagnostics for `vasim snap info`.
struct ChunkInfo {
  u32 tag = 0;
  u32 version = 0;
  u64 size = 0;
  u32 crc_stored = 0;
  u32 crc_actual = 0;
  bool crc_ok = false;
};

struct SnapshotInfo {
  u32 format_version = 0;
  u64 file_size = 0;
  bool endian_ok = false;
  std::vector<ChunkInfo> chunks;
};

/// Tolerant reader for diagnostics: requires only the magic and an intact
/// chunk table (throws on truncation mid-header), but reports CRC failures
/// per chunk instead of throwing, so a corrupt snapshot is inspectable.
SnapshotInfo read_snapshot_info(const std::string& path);

}  // namespace vasim::snap

#endif  // VASIM_SNAP_FORMAT_HPP
