# Empty dependencies file for vasim_isa.
# This may be replaced when dependencies are built.
