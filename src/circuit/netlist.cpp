#include "src/circuit/netlist.hpp"

#include <stdexcept>

namespace vasim::circuit {

SigId Netlist::add_input() {
  if (!gates_.empty() && gates_.back().kind != GateKind::kInput) {
    throw std::logic_error("Netlist: inputs must be added before logic gates");
  }
  gates_.push_back(Gate{GateKind::kInput, {kNoSig, kNoSig, kNoSig}});
  ++num_inputs_;
  return static_cast<SigId>(gates_.size() - 1);
}

SigId Netlist::add_gate(GateKind kind, SigId a, SigId b, SigId c) {
  if (kind == GateKind::kInput) throw std::invalid_argument("use add_input()");
  const int fanin = cell_info(kind).fanin;
  const SigId next = static_cast<SigId>(gates_.size());
  const SigId ins[3] = {a, b, c};
  for (int i = 0; i < 3; ++i) {
    if (i < fanin) {
      if (ins[i] == kNoSig || ins[i] >= next) {
        throw std::invalid_argument("Netlist: gate input missing or forward reference");
      }
    } else if (ins[i] != kNoSig) {
      throw std::invalid_argument("Netlist: too many inputs for cell");
    }
  }
  gates_.push_back(Gate{kind, {a, b, c}});
  if (kind != GateKind::kConst0 && kind != GateKind::kConst1) ++num_logic_;
  return next;
}

void Netlist::mark_output(SigId s) {
  if (s < 0 || s >= num_signals()) throw std::invalid_argument("Netlist: bad output id");
  outputs_.push_back(s);
}

SigId Netlist::const0() {
  if (const0_ == kNoSig) const0_ = add_gate(GateKind::kConst0);
  return const0_;
}

SigId Netlist::const1() {
  if (const1_ == kNoSig) const1_ = add_gate(GateKind::kConst1);
  return const1_;
}

Bus Netlist::add_input_bus(int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b.push_back(add_input());
  return b;
}

SigId Netlist::reduce_and(std::span<const SigId> bits) {
  if (bits.empty()) return const1();
  std::vector<SigId> level(bits.begin(), bits.end());
  while (level.size() > 1) {
    std::vector<SigId> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(and2(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

SigId Netlist::reduce_or(std::span<const SigId> bits) {
  if (bits.empty()) return const0();
  std::vector<SigId> level(bits.begin(), bits.end());
  while (level.size() > 1) {
    std::vector<SigId> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(or2(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

namespace {
void check_same_width(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Netlist: bus width mismatch");
}
}  // namespace

Bus Netlist::bus_and(const Bus& a, const Bus& b) {
  check_same_width(a, b);
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(and2(a[i], b[i]));
  return out;
}

Bus Netlist::bus_or(const Bus& a, const Bus& b) {
  check_same_width(a, b);
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(or2(a[i], b[i]));
  return out;
}

Bus Netlist::bus_xor(const Bus& a, const Bus& b) {
  check_same_width(a, b);
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor2(a[i], b[i]));
  return out;
}

Bus Netlist::bus_inv(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const SigId s : a) out.push_back(inv(s));
  return out;
}

Bus Netlist::bus_mux(const Bus& lo, const Bus& hi, SigId sel) {
  check_same_width(lo, hi);
  Bus out;
  out.reserve(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) out.push_back(mux2(lo[i], hi[i], sel));
  return out;
}

Bus Netlist::ripple_add(const Bus& a, const Bus& b, SigId carry_in, SigId* cout) {
  check_same_width(a, b);
  Bus sum;
  sum.reserve(a.size());
  SigId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SigId axb = xor2(a[i], b[i]);
    sum.push_back(xor2(axb, carry));
    // carry-out = a&b | carry&(a^b)
    const SigId t1 = and2(a[i], b[i]);
    const SigId t2 = and2(carry, axb);
    carry = or2(t1, t2);
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

SigId Netlist::equals(const Bus& a, const Bus& b) {
  check_same_width(a, b);
  std::vector<SigId> eq;
  eq.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq.push_back(xnor2(a[i], b[i]));
  return reduce_and(eq);
}

}  // namespace vasim::circuit
