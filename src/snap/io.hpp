// Snapshot byte-stream primitives.
//
// Header-only on purpose: the stateful components (cpu, check, workload,
// obs) implement save_state/restore_state against Writer/Reader without
// linking the vasim_snap library, which keeps the dependency graph acyclic
// (the chunk-level glue that knows about pipelines lives in vasim_core;
// vasim_snap itself depends only on vasim_common).
//
// Every multi-byte value is written little-endian byte by byte, so the
// on-disk format is identical regardless of host endianness.  Readers throw
// SnapshotError on any underrun instead of returning garbage: a truncated
// chunk must never be silently loaded.
#ifndef VASIM_SNAP_IO_HPP
#define VASIM_SNAP_IO_HPP

#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace vasim::snap {

/// Any malformed-snapshot condition: bad magic, version mismatch, CRC
/// failure, truncation, or a payload that does not match the running
/// configuration.  Always an error, never a silent fallback.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& msg) : std::runtime_error("snapshot: " + msg) {}
};

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `n` bytes.
inline u32 crc32(const void* data, std::size_t n, u32 seed = 0) {
  static const auto table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  u32 c = ~seed;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

/// Append-only little-endian byte sink.
class Writer {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v, 2); }
  void put_u32(u32 v) { put_le(v, 4); }
  void put_u64(u64 v) { put_le(v, 8); }
  void put_i32(i32 v) { put_le(static_cast<u32>(v), 4); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v), 8); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) { put_u64(std::bit_cast<u64>(v)); }
  void put_str(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] const std::vector<unsigned char>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<unsigned char> take() { return std::move(buf_); }

 private:
  void put_le(u64 v, int bytes) {
    for (int i = 0; i < bytes; ++i) buf_.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
  }
  std::vector<unsigned char> buf_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer.
class Reader {
 public:
  Reader(const unsigned char* p, std::size_t n) : p_(p), n_(n) {}
  explicit Reader(const std::vector<unsigned char>& v) : Reader(v.data(), v.size()) {}

  u8 get_u8() { return static_cast<u8>(get_le(1)); }
  u16 get_u16() { return static_cast<u16>(get_le(2)); }
  u32 get_u32() { return static_cast<u32>(get_le(4)); }
  u64 get_u64() { return get_le(8); }
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  i64 get_i64() { return static_cast<i64>(get_u64()); }
  bool get_bool() {
    const u8 v = get_u8();
    if (v > 1) throw SnapshotError("bool field holds " + std::to_string(v));
    return v != 0;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_str() {
    const u32 len = get_u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return s;
  }
  void get_bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return n_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == n_; }
  /// Restore code calls this after consuming a chunk: trailing bytes mean
  /// the payload does not match what the running build expects.
  void expect_done(const char* what) const {
    if (!done()) throw SnapshotError(std::string(what) + ": " + std::to_string(remaining()) + " unconsumed bytes");
  }

 private:
  void need(std::size_t n) const {
    if (n_ - pos_ < n) throw SnapshotError("payload truncated (need " + std::to_string(n) + " bytes, have " + std::to_string(n_ - pos_) + ")");
  }
  u64 get_le(int bytes) {
    need(static_cast<std::size_t>(bytes));
    u64 v = 0;
    for (int i = 0; i < bytes; ++i) v |= static_cast<u64>(p_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }
  const unsigned char* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

/// StatSet codec (name-keyed counters + scalars; std::map order makes the
/// byte stream deterministic).
inline void put_statset(Writer& w, const StatSet& s) {
  w.put_u32(static_cast<u32>(s.counters().size()));
  for (const auto& [name, v] : s.counters()) {
    w.put_str(name);
    w.put_u64(v);
  }
  w.put_u32(static_cast<u32>(s.scalars().size()));
  for (const auto& [name, v] : s.scalars()) {
    w.put_str(name);
    w.put_f64(v);
  }
}

inline StatSet get_statset(Reader& r) {
  StatSet s;
  const u32 nc = r.get_u32();
  for (u32 i = 0; i < nc; ++i) {
    const std::string name = r.get_str();
    s.inc(name, r.get_u64());
  }
  const u32 ns = r.get_u32();
  for (u32 i = 0; i < ns; ++i) {
    const std::string name = r.get_str();
    s.set(name, r.get_f64());
  }
  return s;
}

}  // namespace vasim::snap

#endif  // VASIM_SNAP_IO_HPP
