// Reproduces Figure 7 (Supplement S1.3): commonality in sensitized paths for
// four microprocessor components across six SPEC2000-integer-like
// benchmarks, via two-value gate simulation of many dynamic instances per
// static PC.
#include <iostream>

#include "src/circuit/builders.hpp"
#include "src/circuit/gatesim.hpp"
#include "src/common/env.hpp"
#include "src/common/table.hpp"
#include "src/workload/inputs.hpp"
#include "src/workload/profiles.hpp"

using namespace vasim;
using namespace vasim::circuit;

int main() {
  const int pcs = static_cast<int>(env_u64("VASIM_FIG7_PCS", 40));
  const int instances = static_cast<int>(env_u64("VASIM_FIG7_INSTANCES", 24));
  std::cout << "=== Figure 7: Commonality in sensitized paths ===\n"
            << "(" << pcs << " static PCs x " << instances
            << " dynamic instances per component; commonality = |phi| / |psi| over\n"
            << "toggled gates, weighted uniformly across PCs)\n\n";

  struct Comp {
    const char* name;
    Component comp;
    double paper_avg;
  };
  Comp comps[] = {
      {"IssueQSelect", build_issue_select(32, 4), 0.874},
      {"AGen", build_agen(32, 16), 0.890},
      {"ForwardCheck", build_forward_check(4, 4, 7), 0.924},
      {"ALU", build_simple_alu(32), 0.900},
  };

  const auto profiles = workload::spec2000_profiles();
  TextTable t({"component", "bzip", "gap", "gzip", "mcf", "parser", "vortex", "avg", "(paper)"});
  for (Comp& c : comps) {
    std::vector<std::string> row = {c.name};
    double sum = 0;
    for (const auto& prof : profiles) {
      const workload::ComponentInputGen gen(prof, input_width(c.comp));
      double acc = 0;
      for (int p = 0; p < pcs; ++p) {
        const Pc pc = 0x1000 + static_cast<Pc>(p) * 4;
        const auto inst = gen.instances(pc, instances);
        acc += measure_commonality(c.comp, inst).ratio;
      }
      const double avg = acc / pcs;
      row.push_back(TextTable::fmt(avg, 3));
      sum += avg;
    }
    row.push_back(TextTable::fmt(sum / static_cast<double>(profiles.size()), 3));
    row.push_back("(" + TextTable::fmt(c.paper_avg, 3) + ")");
    t.add_row(row);
  }
  std::cout << t.render() << "\n";
  std::cout << "Paper reference (Figure 7): 87.4% (IQ select), 89% (AGen), 92.4%\n"
               "(ForwardCheck), 90% (ALU) average commonality; vortex highest (~96% in\n"
               "the issue queue).  Expected shape: high commonality everywhere, vortex\n"
               "on top -- the property that makes per-PC timing-violation prediction\n"
               "work (S1.4).\n";
  return 0;
}
