#include "src/common/rng.hpp"

namespace vasim {

double hash_to_gaussian(u64 h) {
  // Derive two independent uniforms from the hash and apply Box-Muller.
  double u1 = hash_to_unit(h);
  const double u2 = hash_to_unit(hash_mix(h ^ 0xabcdef0123456789ULL));
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace vasim
