// Voltage sweep: the paper's motivation in one chart (Section 1:
// "microprocessors can operate at a tighter frequency, where predictable
// errors frequently occur and are tolerated with minimal performance
// loss").  Sweeps VDD below nominal and reports, per scheme, the fault
// rate, performance overhead, and total energy relative to nominal-supply
// fault-free execution -- showing how far each scheme can undervolt before
// fault handling erases the energy win.
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 100'000);
  const core::SweepRunner sweeper(rc);
  bench::print_run_header("Voltage sweep: undervolting headroom per scheme (bzip2)", rc,
                          sweeper.workers());

  const auto prof = workload::spec2006_profile("bzip2");
  const double vdds[] = {1.10, 1.07, 1.04, 1.00, 0.97};
  const char* names[] = {"razor", "ep", "abs"};

  // Job 0: nominal fault-free baseline; then (razor, ep, abs) per supply.
  std::vector<core::SweepJob> jobs;
  jobs.push_back({prof, std::nullopt, timing::SupplyPoints::kNominal, std::nullopt});
  for (const double vdd : vdds) {
    for (const char* name : names) {
      jobs.push_back({prof, *core::scheme_by_name(name), vdd, std::nullopt});
    }
  }
  const core::SweepReport report = sweeper.run(jobs);
  const core::RunResult& nominal = report.jobs[0].result;

  TextTable t({"VDD", "FR%", "razor perf%/energy", "ep perf%/energy", "abs perf%/energy"});
  std::size_t at = 1;
  for (const double vdd : vdds) {
    std::vector<std::string> row = {TextTable::fmt(vdd, 2)};
    std::string fr;
    for (std::size_t s = 0; s < std::size(names); ++s) {
      const core::RunResult& r = report.jobs[at++].result;
      if (fr.empty()) fr = TextTable::fmt(r.fault_rate_pct, 2);
      // Performance vs *nominal* fault-free; energy relative to nominal run.
      const double perf = (nominal.ipc / r.ipc - 1.0) * 100.0;
      const double energy = r.energy.total_nj() / nominal.energy.total_nj();
      row.push_back(TextTable::fmt(perf, 1) + "% / " + TextTable::fmt(energy, 3));
    }
    row.insert(row.begin() + 1, fr);
    t.add_row(row);
  }
  std::cout << t.render() << "\n";
  std::cout << "Reading: at each supply, energy < 1.0 means the undervolt still saves\n"
               "energy after fault handling.  Razor's replay work erodes the saving\n"
               "quickly; violation-aware scheduling holds the performance line, letting\n"
               "the core run at the lowest supply -- the paper's \"energy-efficient\n"
               "alternative for robust pipelines\".\n";
  bench::emit_json("voltage_sweep", report);
  return 0;
}
