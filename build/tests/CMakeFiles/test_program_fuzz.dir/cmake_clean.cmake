file(REMOVE_RECURSE
  "CMakeFiles/test_program_fuzz.dir/test_program_fuzz.cpp.o"
  "CMakeFiles/test_program_fuzz.dir/test_program_fuzz.cpp.o.d"
  "test_program_fuzz"
  "test_program_fuzz.pdb"
  "test_program_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
