file(REMOVE_RECURSE
  "libvasim_core.a"
)
