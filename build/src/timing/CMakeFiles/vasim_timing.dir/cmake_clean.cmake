file(REMOVE_RECURSE
  "CMakeFiles/vasim_timing.dir/fault_model.cpp.o"
  "CMakeFiles/vasim_timing.dir/fault_model.cpp.o.d"
  "CMakeFiles/vasim_timing.dir/path_model.cpp.o"
  "CMakeFiles/vasim_timing.dir/path_model.cpp.o.d"
  "CMakeFiles/vasim_timing.dir/process_variation.cpp.o"
  "CMakeFiles/vasim_timing.dir/process_variation.cpp.o.d"
  "CMakeFiles/vasim_timing.dir/sensors.cpp.o"
  "CMakeFiles/vasim_timing.dir/sensors.cpp.o.d"
  "CMakeFiles/vasim_timing.dir/voltage.cpp.o"
  "CMakeFiles/vasim_timing.dir/voltage.cpp.o.d"
  "libvasim_timing.a"
  "libvasim_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
