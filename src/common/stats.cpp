#include "src/common/stats.hpp"

#include <sstream>

namespace vasim {

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) os << name << " = " << value << '\n';
  for (const auto& [name, value] : scalars_) os << name << " = " << value << '\n';
  return os.str();
}

StatSet StatSet::diff(const StatSet& base) const {
  StatSet out;
  for (const auto& [name, value] : counters_) {
    const u64 b = base.count(name);
    out.inc(name, value >= b ? value - b : 0);
  }
  for (const auto& [name, value] : scalars_) out.set(name, value);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double value, u64 weight) {
  if (weight == 0) return;
  if (total_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += weight;
  sum_ += value * static_cast<double>(weight);
  sumsq_ += value * value * static_cast<double>(weight);
  if (value < lo_) {
    underflow_ += weight;
  } else if (value >= hi_) {
    overflow_ += weight;
  } else {
    auto idx = static_cast<std::size_t>((value - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    counts_[idx] += weight;
  }
}

double Histogram::stddev() const {
  if (total_ < 2) return 0.0;
  const double n = static_cast<double>(total_);
  const double var = (sumsq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return max_;
}

}  // namespace vasim
