// Reproduces Table 2 (Supplement S3): area and power overhead of the
// proposed Violation Tolerant Enhancements, at scheduler level and scaled to
// core level by the scheduler's share of the core (paper: 3.9% area, 8.9%
// dynamic power, 1.2% leakage power).
#include <iostream>

#include "src/circuit/power.hpp"
#include "src/circuit/scheduler_blocks.hpp"
#include "src/common/table.hpp"

using namespace vasim;
using namespace vasim::circuit;

namespace {

// Scheduler share of the whole core, as reported in Supplement S3.
constexpr double kSchedAreaShare = 0.039;
constexpr double kSchedDynShare = 0.089;
constexpr double kSchedLeakShare = 0.012;

std::string pct(double v) { return TextTable::fmt(v * 100.0, 2) + "%"; }

}  // namespace

int main() {
  std::cout << "=== Table 2: Area and Power overhead of the proposed VTE ===\n"
            << "(gate-level scheduler models, 45 nm-style cell library)\n\n";

  const SchedulerShape shape;
  const auto base = build_scheduler(SchedulerVariant::kBaseline, shape);
  const auto absffs = build_scheduler(SchedulerVariant::kAbsFfs, shape);
  const auto cds = build_scheduler(SchedulerVariant::kCds, shape);

  const PowerReport pb = roll_up(std::span<const Component>(base.blocks));
  const PowerReport pa = roll_up(std::span<const Component>(absffs.blocks));
  const PowerReport pc = roll_up(std::span<const Component>(cds.blocks));

  std::cout << "Baseline scheduler: " << pb.gate_count << " gates, " << pb.flop_count
            << " flops, " << TextTable::fmt(pb.area_um2, 0) << " um^2, "
            << TextTable::fmt(pb.dynamic_power_uw, 0) << " uW dynamic, "
            << TextTable::fmt(pb.leakage_power_uw, 1) << " uW leakage\n\n";

  TextTable t({"scheme", "sched-area", "sched-dyn", "sched-leak", "core-area", "core-dyn",
               "core-leak"});
  const struct {
    const char* name;
    const PowerReport* rep;
  } rows[] = {{"ABS", &pa}, {"FFS", &pa}, {"CDS", &pc}};
  for (const auto& row : rows) {
    const OverheadReport o = overhead(pb, *row.rep);
    t.add_row({row.name, pct(o.area), pct(o.dynamic_power), pct(o.leakage_power),
               pct(o.area * kSchedAreaShare), pct(o.dynamic_power * kSchedDynShare),
               pct(o.leakage_power * kSchedLeakShare)});
  }
  std::cout << t.render() << "\n";
  std::cout << "Paper reference (Table 2): ABS/FFS 0.77%/0.57%/0.87% scheduler-level,\n"
               "CDS 6.35%/1.56%/6.80%; core-level overheads all below 0.25%.\n"
               "Expected shape: ABS == FFS << CDS; core-level fractions of a percent.\n";
  return 0;
}
