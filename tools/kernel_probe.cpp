// Steady-state cycle-loop probe: pregenerates a trace buffer, replays it
// through the pipeline, and reports simulated MIPS for the step() loop only
// (no trace generation or construction in the timed region).
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

using namespace vasim;

namespace {

class ReplaySource final : public isa::InstructionSource {
 public:
  explicit ReplaySource(const std::vector<isa::DynInst>* buf) : buf_(buf) {}
  bool next(isa::DynInst& out) override {
    out = (*buf_)[i_];
    if (++i_ == buf_->size()) i_ = 0;
    return true;
  }
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  const std::vector<isa::DynInst>* buf_;
  std::size_t i_ = 0;
};

double measure_mips(const std::vector<isa::DynInst>& buf, bool with_faults) {
  const auto prof = workload::spec2006_profile("sjeng");
  ReplaySource src(&buf);
  cpu::CoreConfig cfg;
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  cpu::Pipeline p(cfg, with_faults ? cpu::scheme_abs() : cpu::scheme_fault_free(), &src,
                  with_faults ? &fm : nullptr, with_faults ? &tep : nullptr);
  constexpr u64 kWarm = 30'000;
  constexpr u64 kMeasure = 300'000;
  while (p.committed() < kWarm) p.step();
  const auto t0 = std::chrono::steady_clock::now();
  while (p.committed() < kWarm + kMeasure) p.step();
  const auto t1 = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(kMeasure) / s;
}

}  // namespace

int main() {
  const auto prof = workload::spec2006_profile("sjeng");
  workload::TraceGenerator gen(prof);
  std::vector<isa::DynInst> buf(400'000);
  for (isa::DynInst& d : buf) gen.next(d);

  double best_ff = 0.0;
  double best_abs = 0.0;
  for (int r = 0; r < 3; ++r) {
    const double ff = measure_mips(buf, false);
    const double ab = measure_mips(buf, true);
    if (ff > best_ff) best_ff = ff;
    if (ab > best_abs) best_abs = ab;
  }
  std::printf("kernel_mips_fault_free %.0f\nkernel_mips_abs %.0f\n", best_ff, best_abs);
  return 0;
}
