#include "src/check/semantics.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/cpu/pipeline.hpp"

namespace vasim::check {
namespace {

u32 pow2_at_least(u32 v) {
  u32 p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SemanticsChecker::SemanticsChecker(const cpu::CoreConfig& cfg, const cpu::SchemeConfig& scheme)
    : cfg_(cfg), scheme_(scheme) {
  const u32 cap = pow2_at_least(static_cast<u32>(cfg_.rob_entries));
  recs_.resize(cap);
  rec_mask_ = cap - 1;
  phys_ready_.assign(static_cast<std::size_t>(cfg_.phys_regs), 1);
  // Shadow FUSR: the same kind-grouped unit layout FuPool builds (simple,
  // complex, branch, load, store), all initially free.
  fu_free_.assign(static_cast<std::size_t>(cfg_.simple_alus + cfg_.complex_alus +
                                           cfg_.branch_units + cfg_.load_ports +
                                           cfg_.store_ports),
                  0);
}

void SemanticsChecker::attach(cpu::Pipeline& pipe) {
  if (!cpu::kCheckHooksEnabled) {
    throw std::runtime_error(
        "SemanticsChecker: scheduler hooks compiled out (VASIM_CHECK_HOOKS=0); "
        "a blind checker would silently pass");
  }
  pipe.add_observer(this);
  pipe.set_check_hooks(this);
}

SemanticsChecker::Rec* SemanticsChecker::rec_of(SeqNum seq) {
  Rec& r = recs_[static_cast<u32>(seq) & rec_mask_];
  return (r.valid && r.seq == seq) ? &r : nullptr;
}

const SemanticsChecker::Rec* SemanticsChecker::oldest_rec() const {
  const Rec& r = recs_[static_cast<u32>(next_commit_seq_) & rec_mask_];
  return (r.valid && r.seq == next_commit_seq_) ? &r : nullptr;
}

void SemanticsChecker::fail(const char* invariant, Cycle now, std::string detail) {
  ++total_violations_;
  bool found = false;
  for (InvariantCount& c : by_invariant_) {
    if (c.invariant == invariant) {
      ++c.violations;
      found = true;
      break;
    }
  }
  if (!found) by_invariant_.push_back({invariant, 1});
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back({invariant, std::move(detail), now});
  }
}

void SemanticsChecker::check(bool cond, const char* invariant, Cycle now, const char* what,
                             SeqNum seq) {
  ++checks_;
  if (cond) return;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s (seq=%" PRIu64 ", cycle=%" PRIu64 ", stored=%" PRIu64 ")",
                what, static_cast<u64>(seq), static_cast<u64>(now),
                static_cast<u64>(stored(now)));
  fail(invariant, now, buf);
}

Cycle SemanticsChecker::ep_offset(timing::OooStage stage, Cycle exec_lat) const {
  switch (stage) {
    case timing::OooStage::kIssueSelect: return 0;
    case timing::OooStage::kRegRead: return 1;
    case timing::OooStage::kExecute: return 2;
    case timing::OooStage::kMemory: return 3;
    case timing::OooStage::kWriteback: return exec_lat + 1;
  }
  return 0;
}

int SemanticsChecker::shadow_wake(int dst_phys) {
  int deps = 0;
  for (Rec& r : recs_) {
    if (!r.valid || r.pending == 0) continue;
    const bool m1 = r.wait1 && r.src1 == dst_phys;
    const bool m2 = r.wait2 && r.src2 == dst_phys;
    if (!m1 && !m2) continue;
    ++deps;
    if (m1) r.wait1 = false;
    if (m2) r.wait2 = false;
    r.pending = static_cast<u8>(r.pending - (m1 ? 1 : 0) - (m2 ? 1 : 0));
  }
  return deps;
}

bool SemanticsChecker::shadow_load_may_issue(const Rec& load) const {
  // Youngest matching older store decides: issued forwards, un-issued
  // blocks, no match hits the cache (mirror of IssueWindow::load_may_issue).
  const Rec* best = nullptr;
  for (const Rec& r : recs_) {
    if (!r.valid || r.op != isa::OpClass::kStore) continue;
    if (r.seq >= load.seq || r.line_addr != load.line_addr) continue;
    if (best == nullptr || r.seq > best->seq) best = &r;
  }
  return best == nullptr || best->issued;
}

// ---- SchedHooks -----------------------------------------------------------

void SemanticsChecker::on_cycle_start(Cycle now, int slots_frozen, bool mem_blocked) {
  ++cycles_observed_;
  last_cycle_start_ = now;
  saw_cycle_start_ = true;

  // Freeze state rotates exactly once per scheduling step (stall cycles
  // skip the rotation along with everything else).
  check(slots_frozen == expected_frozen_next_, "slot-freeze", now,
        "reported frozen slots != writeback-stage predicted faults of the previous cycle",
        static_cast<SeqNum>(slots_frozen));
  check(mem_blocked == expected_mem_blocked_next_, "lsq-spacing", now,
        "reported CAM block != memory-stage predicted fault issued previous cycle", 0);
  expected_frozen_next_ = 0;
  expected_mem_blocked_next_ = false;
  frozen_reported_ = slots_frozen;
  mem_blocked_reported_ = mem_blocked;
  issues_this_cycle_ = 0;
  commits_this_cycle_ = 0;
  visit_seen_ = false;
  cur_pass_ = 1;
}

void SemanticsChecker::on_global_stall(Cycle now, bool ep_padding) {
  ++stall_cycles_;
  if (ep_padding) {
    check(ep_stalls_owed_ > 0, "ep-padding", now,
          "EP-attributed stall cycle with no pending EP stall event", 0);
    if (ep_stalls_owed_ > 0) --ep_stalls_owed_;
  }
  ++shift_;
  for (Cycle& f : fu_free_) ++f;  // reservations ride the stall (FUSR shift)
}

void SemanticsChecker::on_dispatched(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  check(!any_dispatched_ || seq == next_dispatch_seq_, "dispatch-order", now,
        "dispatch consumed a non-contiguous seq", seq);
  any_dispatched_ = true;
  next_dispatch_seq_ = seq + 1;
  if (seq > max_dispatched_seq_) max_dispatched_seq_ = seq;

  Rec& r = recs_[static_cast<u32>(seq) & rec_mask_];
  check(!r.valid, "commit-order", now,
        "window slot recycled while its instruction was still live (lost seq)", seq);

  r = Rec{};
  r.seq = seq;
  r.valid = true;
  r.age = is.age;
  r.op = is.di.op;
  r.line_addr = is.di.mem_addr & ~7ULL;
  r.pc = is.di.pc;
  r.dst = is.phys_dst;
  r.src1 = is.phys_src1;
  r.src2 = is.phys_src2;
  r.dispatch_cycle = now;
  r.pred_fault = is.pred_fault;
  r.pred_critical = is.pred_critical;
  r.pred_stage = is.pred_stage;
  r.safe_mode = is.safe_mode;
  r.wrong_path = is.wrong_path;

  check(r.src1 == kNoReg || (r.src1 >= 0 && r.src1 < cfg_.phys_regs), "dispatch-order", now,
        "renamed src1 outside the physical register file", seq);
  check(r.src2 == kNoReg || (r.src2 >= 0 && r.src2 < cfg_.phys_regs), "dispatch-order", now,
        "renamed src2 outside the physical register file", seq);
  check(r.dst == kNoReg || (r.dst >= 0 && r.dst < cfg_.phys_regs), "dispatch-order", now,
        "renamed dst outside the physical register file", seq);

  r.wait1 = r.src1 != kNoReg && phys_ready_[static_cast<std::size_t>(r.src1)] == 0;
  r.wait2 = r.src2 != kNoReg && phys_ready_[static_cast<std::size_t>(r.src2)] == 0;
  r.pending = static_cast<u8>((r.wait1 ? 1 : 0) + (r.wait2 ? 1 : 0));
  if (r.dst != kNoReg) phys_ready_[static_cast<std::size_t>(r.dst)] = 0;
}

void SemanticsChecker::on_select_pass(Cycle now, int pass) {
  (void)now;
  cur_pass_ = pass;
  visit_seen_ = false;
}

void SemanticsChecker::on_select_visit(Cycle now, const cpu::InstState& is,
                                       cpu::SelectOutcome outcome) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(r != nullptr, "select-candidate", now, "select visited an unknown instruction", seq);
  if (r == nullptr) return;

  // Oldest-first scan order (ABS): seq order within the pass, which must
  // agree with the 6-bit hardware timestamp's wrapped distance whenever the
  // window span makes the timestamp unambiguous.  The delay-tracking kernel
  // visits in readiness order, not age order, so these two checks apply only
  // to the masked-scan kernel; every other select invariant (eligibility,
  // pass class, LSQ spacing, load-block validity) is kernel-independent.
  if (cfg_.sched_kernel == cpu::SchedKernel::kIssueWindow) {
    if (visit_seen_) {
      check(seq > last_visit_seq_, "select-order", now,
            "selection visited a younger instruction before an older ready one", seq);
    }
    // The 6-bit distance is exact only while the *age* span from the window
    // head stays under 64.  Ages keep counting across squash-refetch (the
    // refetched stream gets fresh, larger ages), so the guard must be in age
    // space, not seq space.  Ages rise with seq among live instructions, so
    // once one visit overflows the representable span every later visit in
    // the pass does too -- the checked visits always form a prefix.
    const Rec* head = oldest_rec();
    if (head != nullptr && r->age - head->age < 64) {
      const u8 dist = static_cast<u8>((r->age - head->age) & 63);
      if (visit_seen_) {
        check(dist > last_visit_dist_ || seq <= last_visit_seq_, "select-order", now,
              "ABS 6-bit timestamp order disagrees with age order", seq);
      }
      last_visit_dist_ = dist;
    }
  }
  visit_seen_ = true;
  last_visit_seq_ = seq;

  // Policy class of the pass (FFS: predicted-faulty first; CDS:
  // predicted-faulty-and-critical first).
  if (scheme_.policy == cpu::SelectPolicy::kFaultyFirst) {
    check((cur_pass_ == 0) == r->pred_fault, "select-candidate", now,
          "FFS pass visited the wrong prediction class", seq);
  } else if (scheme_.policy == cpu::SelectPolicy::kCriticalityDriven) {
    check((cur_pass_ == 0) == (r->pred_fault && r->pred_critical), "select-candidate", now,
          "CDS pass visited the wrong criticality class", seq);
  }

  if (outcome == cpu::SelectOutcome::kIssued) return;  // validated in on_issued

  check(!r->issued, "select-candidate", now, "select revisited an issued instruction", seq);
  check(!r->completed, "select-candidate", now, "select visited a completed instruction", seq);
  check(r->pending == 0, "select-candidate", now,
        "select visited an instruction with outstanding operands", seq);
  check(r->dispatch_cycle < now, "select-candidate", now,
        "instruction selected in its own dispatch cycle", seq);
  check(!(mem_blocked_reported_ && isa::is_mem(r->op)), "lsq-spacing", now,
        "memory op considered during the CAM-spacing block cycle", seq);
  if (outcome == cpu::SelectOutcome::kLoadBlocked) {
    check(r->op == isa::OpClass::kLoad, "stl-order", now, "non-load reported load-blocked", seq);
    check(!shadow_load_may_issue(*r), "stl-order", now,
          "load reported blocked with no older un-issued matching store", seq);
  }
}

void SemanticsChecker::on_fu_allocated(Cycle now, const cpu::InstState& is, int unit,
                                       Cycle next_free) {
  const SeqNum seq = is.di.seq;
  check(unit >= 0 && static_cast<std::size_t>(unit) < fu_free_.size(), "fusr-occupancy", now,
        "allocated unit id outside the pool", seq);
  if (unit < 0 || static_cast<std::size_t>(unit) >= fu_free_.size()) return;

  // Kind-grouped layout: the same contiguous ranges FuPool constructs.
  u32 begin = 0, end = 0;
  u32 b = 0;
  const auto range = [&](int count) {
    begin = b;
    end = b + static_cast<u32>(count);
    b = end;
  };
  range(cfg_.simple_alus);
  u32 alu_b = begin, alu_e = end;
  range(cfg_.complex_alus);
  u32 cx_b = begin, cx_e = end;
  range(cfg_.branch_units);
  u32 br_b = begin, br_e = end;
  range(cfg_.load_ports);
  u32 ld_b = begin, ld_e = end;
  range(cfg_.store_ports);
  u32 st_b = begin, st_e = end;
  u32 want_b = alu_b, want_e = alu_e;
  switch (is.di.op) {
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv: want_b = cx_b; want_e = cx_e; break;
    case isa::OpClass::kBranch: want_b = br_b; want_e = br_e; break;
    case isa::OpClass::kLoad: want_b = ld_b; want_e = ld_e; break;
    case isa::OpClass::kStore: want_b = st_b; want_e = st_e; break;
    default: break;
  }
  const u32 u = static_cast<u32>(unit);
  check(u >= want_b && u < want_e, "fusr-occupancy", now,
        "instruction allocated to a unit of the wrong kind", seq);
  // The FUSR bit: a busy (or frozen) unit must never accept.
  check(fu_free_[u] <= now, "fusr-occupancy", now,
        "instruction entered a busy/frozen functional unit", seq);
  fu_free_[u] = next_free;

  fu_alloc_pending_ = true;
  fu_alloc_seq_ = seq;
  fu_alloc_unit_ = unit;
  fu_alloc_next_free_ = next_free;
}

void SemanticsChecker::on_issued(Cycle now, const cpu::InstState& is, Cycle exec_lat,
                                 Cycle lat_delta) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(r != nullptr, "select-candidate", now, "issued an unknown instruction", seq);
  if (r == nullptr) return;

  check(!r->issued, "select-candidate", now, "instruction issued twice", seq);
  check(r->pending == 0, "select-candidate", now,
        "instruction issued with outstanding source operands", seq);
  check(r->dispatch_cycle < now, "select-candidate", now,
        "instruction issued in its own dispatch cycle", seq);
  check(!(mem_blocked_reported_ && isa::is_mem(r->op)), "lsq-spacing", now,
        "memory op issued during the CAM-spacing block cycle", seq);
  if (r->op == isa::OpClass::kLoad) {
    check(shadow_load_may_issue(*r), "stl-order", now,
          "load issued past an older un-issued matching store", seq);
  }

  ++issues_this_cycle_;
  check(issues_this_cycle_ <= cfg_.issue_width - frozen_reported_, "slot-freeze", now,
        "issued into a frozen issue slot (width exceeded)", seq);

  // The +1 rules (the heart of VTE): exactly one pad cycle per predicted
  // fault, exactly one per safe-mode re-execution, nothing else.
  const Cycle want_delta =
      ((scheme_.vte && r->pred_fault) ? 1 : 0) + (r->safe_mode ? 1 : 0);
  check(lat_delta == want_delta, "delayed-broadcast", now,
        "VTE pad cycles do not match the predicted-fault/safe-mode state", seq);
  switch (r->op) {
    case isa::OpClass::kIntMul:
      check(exec_lat == cfg_.mul_latency, "delayed-broadcast", now,
            "multiply issued with the wrong latency", seq);
      break;
    case isa::OpClass::kIntDiv:
      check(exec_lat == cfg_.div_latency, "delayed-broadcast", now,
            "divide issued with the wrong latency", seq);
      break;
    case isa::OpClass::kLoad:
      check(exec_lat >= 2, "delayed-broadcast", now, "load issued faster than address+data", seq);
      break;
    default:
      check(exec_lat == 1, "delayed-broadcast", now,
            "single-cycle op issued with a multi-cycle latency", seq);
      break;
  }

  // FUSR occupancy: the reservation must cover exactly the issue slot (one
  // cycle for pipelined units), the full latency for the unpipelined
  // divider, plus the single VTE freeze cycle behind a non-writeback
  // predicted fault (Section 3.3.3).
  check(fu_alloc_pending_ && fu_alloc_seq_ == seq, "fusr-occupancy", now,
        "issue without a matching FU reservation", seq);
  if (fu_alloc_pending_ && fu_alloc_seq_ == seq) {
    const bool fu_extra = scheme_.vte && r->pred_fault &&
                          r->pred_stage != timing::OooStage::kWriteback;
    const Cycle occupy = (r->op == isa::OpClass::kIntDiv ? exec_lat + lat_delta : 1) +
                         (fu_extra ? 1 : 0);
    check(fu_alloc_next_free_ == now + occupy, "fusr-occupancy", now,
          "FU reservation length disagrees with the occupancy rule", seq);
  }
  fu_alloc_pending_ = false;

  // Writeback-stage predicted fault freezes one global issue slot next
  // scheduling cycle; a memory-stage one blocks the LSQ CAM next cycle.
  if (scheme_.vte && r->pred_fault) {
    if (r->pred_stage == timing::OooStage::kWriteback) {
      ++expected_frozen_next_;
    } else if (r->pred_stage == timing::OooStage::kMemory) {
      expected_mem_blocked_next_ = true;
    }
  }

  r->issued = true;
  r->actual_fault = is.actual_fault;
  r->actual_stage = is.actual_stage;
  r->covered = is.actual_fault && r->pred_fault && r->pred_stage == is.actual_stage &&
               (scheme_.vte || scheme_.error_padding);
  check(is.fault_handled == r->covered, "razor-replay", now,
        "fault_handled disagrees with the prediction-coverage rule", seq);
  r->replay_expected = is.actual_fault && !r->covered;
  check(is.replay_scheduled == r->replay_expected, "razor-replay", now,
        "replay scheduling disagrees with the coverage rule", seq);

  r->bcast_due = stored(now) + exec_lat + lat_delta;
  r->bcast_pending = r->dst != kNoReg;
  r->complete_due = r->bcast_due + 1;
  r->complete_pending = true;
  if (scheme_.error_padding && r->pred_fault) {
    // The wheel pops once per scheduling step, so an offset-0 (issue-stage)
    // pad lands on the next pop like an offset-1 one.
    const Cycle off = ep_offset(r->pred_stage, exec_lat);
    r->ep_due = stored(now) + (off > 1 ? off : 1);
    r->ep_pending = true;
  }
}

void SemanticsChecker::on_lsq_search(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  check(isa::is_mem(is.di.op), "lsq-spacing", now, "CAM search by a non-memory op", seq);
  // Section 3.3.4: no load/store CAM search in the cycle right behind a
  // predicted-faulty memory-stage instruction.
  check(!mem_blocked_reported_, "lsq-spacing", now,
        "LSQ CAM search during the spacing cycle behind a predicted memory fault", seq);
}

void SemanticsChecker::on_tag_broadcast(Cycle now, const cpu::InstState& is, int deps) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(r != nullptr, "delayed-broadcast", now, "broadcast from an unknown instruction", seq);
  if (r == nullptr) return;
  check(r->issued, "delayed-broadcast", now, "broadcast from an un-issued instruction", seq);
  check(r->dst != kNoReg, "delayed-broadcast", now, "broadcast without a destination", seq);
  check(r->bcast_pending, "delayed-broadcast", now,
        "duplicate or unexpected tag broadcast", seq);
  check(stored(now) == r->bcast_due, "delayed-broadcast", now,
        "tag broadcast not at issue + exec_lat + pad (delayed-broadcast rule)", seq);
  r->bcast_pending = false;

  const int want = shadow_wake(r->dst);
  check(deps == want, "cdl-count", now,
        "broadcast dependent count disagrees with the shadow waiter scan", seq);
  if (r->dst != kNoReg) phys_ready_[static_cast<std::size_t>(r->dst)] = 1;
}

void SemanticsChecker::on_mark_critical(Cycle now, const cpu::InstState& is, int deps,
                                        bool critical) {
  const SeqNum seq = is.di.seq;
  check(scheme_.use_predictor, "cds-threshold", now,
        "criticality feedback without a predictor", seq);
  // CDL promotion exactly at CT tag matches (Section 3.5.2; CT=8).
  check(critical == (deps >= scheme_.criticality_threshold), "cds-threshold", now,
        "criticality bit disagrees with the CT threshold", seq);
}

void SemanticsChecker::on_completed(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(r != nullptr, "completion-time", now, "completion of an unknown instruction", seq);
  if (r == nullptr) return;
  check(r->issued, "completion-time", now, "completion of an un-issued instruction", seq);
  check(!r->completed, "completion-time", now, "instruction completed twice", seq);
  check(r->complete_pending && stored(now) == r->complete_due, "completion-time", now,
        "completion not exactly one cycle after the broadcast", seq);
  check(!r->bcast_pending, "completion-time", now,
        "completion before the tag broadcast", seq);
  r->completed = true;
  r->complete_pending = false;
  last_hook_complete_ = seq;
  have_hook_complete_ = true;
}

void SemanticsChecker::on_ep_stall(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(scheme_.error_padding, "ep-padding", now, "EP stall outside the EP scheme", seq);
  check(r != nullptr, "ep-padding", now, "EP stall for an unknown instruction", seq);
  if (r == nullptr) return;
  check(r->pred_fault, "ep-padding", now, "EP stall for an unpredicted instruction", seq);
  check(r->ep_pending && stored(now) == r->ep_due, "ep-padding", now,
        "EP stall not at the predicted stage's transit cycle", seq);
  r->ep_pending = false;
  ++ep_stalls_owed_;
}

void SemanticsChecker::on_replay(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  Rec* r = rec_of(seq);
  check(r != nullptr, "razor-replay", now, "replay of an unknown instruction", seq);
  if (r == nullptr) return;
  check(r->actual_fault, "razor-replay", now, "replay without an actual fault", seq);
  check(!r->covered, "razor-replay", now,
        "VTE/EP-covered predicted fault must never replay", seq);
  check(r->replay_expected, "razor-replay", now, "unexpected replay", seq);
  check(!r->replay_seen, "razor-replay", now, "instruction replayed twice", seq);
  check(stored(now) == r->complete_due, "razor-replay", now,
        "replay not at the fault's detection (completion) cycle", seq);
  r->replay_seen = true;
}

void SemanticsChecker::on_committed(Cycle now, const cpu::InstState& is) {
  const SeqNum seq = is.di.seq;
  check(seq == next_commit_seq_, "commit-order", now,
        "commit out of program order (lost or duplicated seq)", seq);
  ++commits_this_cycle_;
  check(commits_this_cycle_ <= cfg_.commit_width, "commit-order", now,
        "more commits in one cycle than the commit width", seq);

  Rec* r = rec_of(seq);
  check(r != nullptr, "commit-order", now, "commit of an unknown instruction", seq);
  if (r != nullptr) {
    check(r->completed, "commit-order", now, "commit of an incomplete instruction", seq);
    check(!r->wrong_path, "commit-order", now, "wrong-path instruction committed", seq);
    if (r->actual_fault && !r->covered) {
      check(r->replay_seen, "razor-replay", now,
            "unpredicted actual fault committed without a Razor replay", seq);
    }
    r->valid = false;
  }
  next_commit_seq_ = seq + 1;
  last_hook_commit_ = seq;
  have_hook_commit_ = true;
}

void SemanticsChecker::on_squashed(Cycle now, SeqNum first, SeqNum last) {
  (void)now;
  // The squash range covers the window tail plus the frontend; clamp the
  // walk so a corrupt range cannot spin (everything it could invalidate
  // lives within the record ring anyway).
  const u64 span = last >= first ? last - first + 1 : 0;
  const u64 walk = span > recs_.size() + 1024 ? recs_.size() + 1024 : span;
  for (u64 i = 0; i < walk; ++i) {
    const SeqNum s = first + i;
    Rec& r = recs_[static_cast<u32>(s) & rec_mask_];
    if (r.valid && r.seq == s) r.valid = false;
  }
  next_dispatch_seq_ = first;
  if (any_dispatched_ && max_dispatched_seq_ >= first && first > 0) {
    max_dispatched_seq_ = first - 1;
  }
}

// ---- PipelineObserver ------------------------------------------------------

void SemanticsChecker::on_cycle(Cycle now) {
  // The observer fan-out and the kernel hooks must describe the same cycle.
  if (saw_cycle_start_) {
    check(last_cycle_start_ == now, "hook-observer", now,
          "observer on_cycle disagrees with the kernel's cycle start", 0);
  }
}

void SemanticsChecker::on_complete(SeqNum seq) {
  if (have_hook_complete_) {
    check(last_hook_complete_ == seq, "hook-observer", last_cycle_start_,
          "observer completion does not pair with the kernel completion", seq);
  }
}

void SemanticsChecker::on_commit(SeqNum seq) {
  ++commits_observed_;
  if (have_hook_commit_) {
    check(last_hook_commit_ == seq, "hook-observer", last_cycle_start_,
          "observer commit does not pair with the kernel commit", seq);
  }
}

std::string SemanticsChecker::report() const {
  if (ok()) return {};
  std::ostringstream os;
  os << "SemanticsChecker: " << total_violations_ << " violation(s) across "
     << by_invariant_.size() << " invariant(s), " << checks_ << " checks, "
     << cycles_observed_ << " cycles\n";
  for (const InvariantCount& c : by_invariant_) {
    os << "  [" << c.invariant << "] x" << c.violations << "\n";
  }
  const std::size_t n = violations_.size();
  os << "first " << n << " violation(s):\n";
  for (const Violation& v : violations_) {
    os << "  cycle " << v.cycle << " [" << v.invariant << "] " << v.detail << "\n";
  }
  return os.str();
}

void SemanticsChecker::save_state(snap::Writer& w) const {
  if (!ok()) throw snap::SnapshotError("refusing to snapshot a checker with violations");
  w.put_u32(static_cast<u32>(recs_.size()));
  for (const Rec& rec : recs_) {
    w.put_u64(rec.seq);
    w.put_bool(rec.valid);
    w.put_u64(rec.age);
    w.put_u8(static_cast<u8>(rec.op));
    w.put_u64(rec.line_addr);
    w.put_u64(rec.pc);
    w.put_i32(rec.dst);
    w.put_i32(rec.src1);
    w.put_i32(rec.src2);
    w.put_bool(rec.wait1);
    w.put_bool(rec.wait2);
    w.put_u8(rec.pending);
    w.put_u64(rec.dispatch_cycle);
    w.put_bool(rec.issued);
    w.put_bool(rec.completed);
    w.put_bool(rec.pred_fault);
    w.put_bool(rec.pred_critical);
    w.put_u8(static_cast<u8>(rec.pred_stage));
    w.put_bool(rec.actual_fault);
    w.put_u8(static_cast<u8>(rec.actual_stage));
    w.put_bool(rec.safe_mode);
    w.put_bool(rec.wrong_path);
    w.put_bool(rec.covered);
    w.put_bool(rec.replay_expected);
    w.put_bool(rec.replay_seen);
    w.put_u64(rec.bcast_due);
    w.put_bool(rec.bcast_pending);
    w.put_u64(rec.complete_due);
    w.put_bool(rec.complete_pending);
    w.put_u64(rec.ep_due);
    w.put_bool(rec.ep_pending);
  }
  w.put_u32(static_cast<u32>(phys_ready_.size()));
  for (const u8 v : phys_ready_) w.put_u8(v);
  w.put_u64(shift_);
  w.put_u64(last_cycle_start_);
  w.put_bool(saw_cycle_start_);
  w.put_u64(cycles_observed_);
  w.put_u64(stall_cycles_);
  w.put_i32(frozen_reported_);
  w.put_bool(mem_blocked_reported_);
  w.put_i32(expected_frozen_next_);
  w.put_bool(expected_mem_blocked_next_);
  w.put_i32(issues_this_cycle_);
  w.put_i32(commits_this_cycle_);
  w.put_i32(cur_pass_);
  w.put_bool(visit_seen_);
  w.put_u64(last_visit_seq_);
  w.put_u8(last_visit_dist_);
  w.put_u32(static_cast<u32>(fu_free_.size()));
  for (const Cycle v : fu_free_) w.put_u64(v);
  w.put_bool(fu_alloc_pending_);
  w.put_u64(fu_alloc_seq_);
  w.put_i32(fu_alloc_unit_);
  w.put_u64(fu_alloc_next_free_);
  w.put_u64(next_commit_seq_);
  w.put_u64(next_dispatch_seq_);
  w.put_u64(max_dispatched_seq_);
  w.put_bool(any_dispatched_);
  w.put_u64(ep_stalls_owed_);
  w.put_u64(last_hook_commit_);
  w.put_bool(have_hook_commit_);
  w.put_u64(last_hook_complete_);
  w.put_bool(have_hook_complete_);
  w.put_u64(commits_observed_);
  w.put_u64(checks_);
}

void SemanticsChecker::restore_state(snap::Reader& r) {
  if (r.get_u32() != recs_.size()) throw snap::SnapshotError("checker record table size mismatch");
  for (Rec& rec : recs_) {
    rec.seq = r.get_u64();
    rec.valid = r.get_bool();
    rec.age = r.get_u64();
    rec.op = static_cast<isa::OpClass>(r.get_u8());
    rec.line_addr = r.get_u64();
    rec.pc = r.get_u64();
    rec.dst = r.get_i32();
    rec.src1 = r.get_i32();
    rec.src2 = r.get_i32();
    rec.wait1 = r.get_bool();
    rec.wait2 = r.get_bool();
    rec.pending = r.get_u8();
    rec.dispatch_cycle = r.get_u64();
    rec.issued = r.get_bool();
    rec.completed = r.get_bool();
    rec.pred_fault = r.get_bool();
    rec.pred_critical = r.get_bool();
    rec.pred_stage = static_cast<timing::OooStage>(r.get_u8());
    rec.actual_fault = r.get_bool();
    rec.actual_stage = static_cast<timing::OooStage>(r.get_u8());
    rec.safe_mode = r.get_bool();
    rec.wrong_path = r.get_bool();
    rec.covered = r.get_bool();
    rec.replay_expected = r.get_bool();
    rec.replay_seen = r.get_bool();
    rec.bcast_due = r.get_u64();
    rec.bcast_pending = r.get_bool();
    rec.complete_due = r.get_u64();
    rec.complete_pending = r.get_bool();
    rec.ep_due = r.get_u64();
    rec.ep_pending = r.get_bool();
  }
  if (r.get_u32() != phys_ready_.size()) throw snap::SnapshotError("checker phys reg count mismatch");
  for (u8& v : phys_ready_) v = r.get_u8();
  shift_ = r.get_u64();
  last_cycle_start_ = r.get_u64();
  saw_cycle_start_ = r.get_bool();
  cycles_observed_ = r.get_u64();
  stall_cycles_ = r.get_u64();
  frozen_reported_ = r.get_i32();
  mem_blocked_reported_ = r.get_bool();
  expected_frozen_next_ = r.get_i32();
  expected_mem_blocked_next_ = r.get_bool();
  issues_this_cycle_ = r.get_i32();
  commits_this_cycle_ = r.get_i32();
  cur_pass_ = r.get_i32();
  visit_seen_ = r.get_bool();
  last_visit_seq_ = r.get_u64();
  last_visit_dist_ = r.get_u8();
  if (r.get_u32() != fu_free_.size()) throw snap::SnapshotError("checker fu table size mismatch");
  for (Cycle& v : fu_free_) v = r.get_u64();
  fu_alloc_pending_ = r.get_bool();
  fu_alloc_seq_ = r.get_u64();
  fu_alloc_unit_ = r.get_i32();
  fu_alloc_next_free_ = r.get_u64();
  next_commit_seq_ = r.get_u64();
  next_dispatch_seq_ = r.get_u64();
  max_dispatched_seq_ = r.get_u64();
  any_dispatched_ = r.get_bool();
  ep_stalls_owed_ = r.get_u64();
  last_hook_commit_ = r.get_u64();
  have_hook_commit_ = r.get_bool();
  last_hook_complete_ = r.get_u64();
  have_hook_complete_ = r.get_bool();
  commits_observed_ = r.get_u64();
  checks_ = r.get_u64();
}

}  // namespace vasim::check
