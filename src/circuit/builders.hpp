// Structural builders for the four microprocessor components studied in
// Supplement S1 (Table 3 / Figure 7): simple ALU, issue-queue select, AGEN
// and forward-check logic.  Each builder returns a Component: a netlist plus
// its flattened input ordering and a storage-bit count for power accounting.
#ifndef VASIM_CIRCUIT_BUILDERS_HPP
#define VASIM_CIRCUIT_BUILDERS_HPP

#include <string>
#include <vector>

#include "src/circuit/netlist.hpp"

namespace vasim::circuit {

/// A synthesized block: netlist + IO bookkeeping.
struct Component {
  std::string name;
  Netlist netlist;
  /// Primary inputs in evaluation order (== ids [0, num_inputs)).
  Bus inputs;
  /// Primary outputs (also marked in the netlist).
  Bus outputs;
  /// Sequential storage bits attached to this block (flops are accounted in
  /// area/power but not gate-simulated).
  int flop_count = 0;
};

/// ALU opcodes for build_simple_alu (3-bit op input, LSB first).
enum class AluOp : int {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kShl = 5,
  kShr = 6,
  kSlt = 7,
};

/// 32-bit (parameterizable) single-cycle ALU: Kogge-Stone adder/subtractor,
/// logic unit, barrel shifter, signed set-less-than; zero flag output.
/// Inputs: a[width], b[width], op[3].  Outputs: result[width], zero.
Component build_simple_alu(int width = 32);

/// Issue-queue select: picks up to `grants` requesters out of `entries`
/// (paper: 4-of-32).  Implemented as per-half chained priority arbiters, the
/// canonical low-gate-count select tree.  Inputs: req[entries].
/// Outputs: grant[entries].
Component build_issue_select(int entries = 32, int grants = 4);

/// Address-generation unit: base[width] + sign-extended offset[off_bits]
/// using carry-select blocks, plus misalignment detect for the access size.
/// Inputs: base[width], offset[off_bits], size[2].
/// Outputs: addr[width], misaligned.
Component build_agen(int width = 32, int off_bits = 16);

/// Forward-check (bypass-control) logic: compares `producers` result tags
/// against `consumers` x 2 source tags and raises a forward-enable per
/// (consumer, source, producer) plus per-source "any match".
/// Inputs: prod_tag[producers][tag_bits], prod_valid[producers],
///         src_tag[consumers][2][tag_bits], src_valid[consumers][2].
/// Outputs: fwd[consumers*2*producers], any[consumers*2].
Component build_forward_check(int producers = 4, int consumers = 4, int tag_bits = 7);

/// Shift-add array multiplier (the complex-ALU datapath of Section 3.3.3's
/// multi-cycle units).  Inputs: a[width], b[width].  Outputs: p[2*width].
Component build_array_multiplier(int width = 8);

/// LSQ CAM match line (the memory-stage structure of Section 3.3.4): one
/// search tag compared against every queue entry, qualified by valid and
/// older-than masks.  Inputs: search[tag_bits], entry_tag[entries][tag_bits],
/// valid[entries], older[entries].  Outputs: match[entries], any_match.
Component build_lsq_cam(int entries = 24, int tag_bits = 12);

/// Convenience: total input width of a component.
inline int input_width(const Component& c) { return static_cast<int>(c.inputs.size()); }

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_BUILDERS_HPP
