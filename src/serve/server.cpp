#include "src/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "src/obs/timeline.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

Server::Server(const ServeConfig& cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity) {
  jobs_submitted_ = reg_.counter("serve.jobs.submitted");
  jobs_rejected_ = reg_.counter("serve.jobs.rejected");
  jobs_completed_ = reg_.counter("serve.jobs.completed");
  jobs_cancelled_ = reg_.counter("serve.jobs.cancelled");
  jobs_failed_ = reg_.counter("serve.jobs.failed");
  cells_completed_ = reg_.counter("serve.cells.completed");
  cells_cancelled_ = reg_.counter("serve.cells.cancelled");
  cache_hits_ = reg_.counter("serve.cache.hit");
  cache_misses_ = reg_.counter("serve.cache.miss");
  cache_insertions_ = reg_.counter("serve.cache.insert");
  cache_evictions_ = reg_.counter("serve.cache.evict");
  queue_depth_gauge_ = reg_.gauge("serve.queue.depth");
  queue_peak_gauge_ = reg_.gauge("serve.queue.peak");
  const std::size_t n = std::max<std::size_t>(1, cfg_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

u64 Server::submit(const JobSpec& spec) {
  // Validate and resolve outside the lock: profile/scheme lookup touches
  // only immutable tables, and a rejected frame must never block workers.
  if (spec.cells.empty()) throw ServeError("bad_grid", "a job needs at least one cell");
  if (spec.cells.size() > cfg_.max_cells_per_job) {
    throw ServeError("bad_grid", "job has " + std::to_string(spec.cells.size()) +
                                     " cells, limit is " +
                                     std::to_string(cfg_.max_cells_per_job));
  }
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->cfg = cfg_.runner;
  if (spec.instructions) job->cfg.instructions = *spec.instructions;
  if (spec.warmup) job->cfg.warmup = *spec.warmup;
  if (spec.timeline_interval) job->cfg.timeline_interval = *spec.timeline_interval;
  if (spec.dvfs) job->cfg.dvfs.policy = *spec.dvfs;
  if (spec.epoch) job->cfg.dvfs.epoch = *spec.epoch;
  try {
    adapt::validate_dvfs_config(job->cfg.dvfs);
  } catch (const std::invalid_argument& e) {
    throw ServeError("bad_field", e.what());
  }
  job->cfg.profiler_hub = cfg_.profiler_hub;
  job->cfg.progress = false;
  if (job->cfg.instructions == 0) throw ServeError("bad_grid", "instructions must be > 0");
  job->cells.reserve(spec.cells.size());
  for (const CellSpec& c : spec.cells) {
    ResolvedCell rc;
    try {
      rc.profile = workload::spec2006_profile(c.bench);
    } catch (const std::out_of_range&) {
      throw ServeError("bad_grid", "unknown benchmark '" + c.bench + "'");
    }
    const std::optional<cpu::SchemeConfig> scheme = core::scheme_by_name(c.scheme);
    if (!scheme) throw ServeError("bad_grid", "unknown scheme '" + c.scheme + "'");
    // "fault-free" selects the baseline wiring, exactly like SweepJob's
    // nullopt scheme and the CLI.
    if (scheme->name != "fault-free") rc.scheme = *scheme;
    if (!std::isfinite(c.vdd) || c.vdd <= 0.0) {
      throw ServeError("bad_grid", "vdd must be a positive finite voltage");
    }
    rc.vdd = c.vdd;
    job->cells.push_back(std::move(rc));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) throw ServeError("shutting_down", "server is shutting down");
  if (queue_.size() >= cfg_.queue_limit) {
    jobs_rejected_.inc();
    throw QueueFullError(cfg_.queue_limit, retry_after_ms_locked());
  }
  job->id = next_id_++;
  const u64 id = job->id;
  queue_.push_back(job.get());
  queue_peak_ = std::max(queue_peak_, queue_.size());
  jobs_submitted_.inc();
  jobs_.emplace(id, std::move(job));
  work_cv_.notify_one();
  return id;
}

u64 Server::retry_after_ms_locked() const {
  // Advisory: the backlog ahead of a would-be submitter, paced by the
  // measured per-job service time, spread over the workers.
  const double backlog = static_cast<double>(queue_.size() + running_ + 1);
  const double ms = service_ewma_ms_ * backlog / static_cast<double>(workers_.size());
  return static_cast<u64>(std::max(1.0, ms));
}

JobStatus Server::status(u64 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw ServeError("unknown_job", "no job " + std::to_string(id));
  const Job& j = *it->second;
  JobStatus s;
  s.id = j.id;
  s.state = j.state;
  s.cells = j.cells.size();
  s.done = j.results.size();
  s.error = j.error;
  s.tag = j.spec.tag;
  return s;
}

std::vector<CellResult> Server::results(u64 id, std::size_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw ServeError("unknown_job", "no job " + std::to_string(id));
  const Job& j = *it->second;
  if (since >= j.results.size()) return {};
  return {j.results.begin() + static_cast<std::ptrdiff_t>(since), j.results.end()};
}

JobState Server::cancel(u64 id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw ServeError("unknown_job", "no job " + std::to_string(id));
  Job& j = *it->second;
  switch (j.state) {
    case JobState::kQueued: {
      // Still in the admission queue: remove and cancel every cell now.
      queue_.erase(std::remove(queue_.begin(), queue_.end(), &j), queue_.end());
      j.cancel.cancel();
      cancel_remaining_cells_locked(j);
      finish_job_locked(j, JobState::kCancelled);
      break;
    }
    case JobState::kRunning:
      // Cooperative: the worker finishes the current cell, then reports the
      // rest cancelled (run_job checks the token between cells).
      j.cancel.cancel();
      break;
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kFailed:
      break;  // terminal states are immutable
  }
  return j.state;
}

bool Server::wait(u64 id, u64 timeout_ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw ServeError("unknown_job", "no job " + std::to_string(id));
  const Job& j = *it->second;
  const auto terminal = [&j] {
    return j.state == JobState::kDone || j.state == JobState::kCancelled ||
           j.state == JobState::kFailed;
  };
  return done_cv_.wait_until(lock, deadline, terminal);
}

void Server::drain() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    for (const auto& [id, j] : jobs_) {
      if (j->state == JobState::kQueued || j->state == JobState::kRunning) return false;
    }
    return true;
  });
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Queued jobs cancel immediately; running jobs get their token fired and
    // finish the cell in flight (the cooperative contract).
    for (Job* j : queue_) {
      j->cancel.cancel();
      cancel_remaining_cells_locked(*j);
      finish_job_locked(*j, JobState::kCancelled);
    }
    queue_.clear();
    for (auto& [id, j] : jobs_) {
      if (j->state == JobState::kRunning) j->cancel.cancel();
    }
    work_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void Server::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    Job* job = queue_.front();
    queue_.pop_front();
    job->state = JobState::kRunning;
    ++running_;
    lock.unlock();
    run_job(*job);
    lock.lock();
    --running_;
  }
}

void Server::run_job(Job& job) {
  const auto t0 = Clock::now();
  const std::size_t n = job.cells.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (job.cancel.cancelled()) break;
    CellResult cell;
    try {
      cell = run_cell(job, i);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      job.error = e.what();
      finish_job_locked(job, JobState::kFailed);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    job.results.push_back(std::move(cell));
    cells_completed_.inc();
    // Streaming polls see each cell as it lands, not only at job end.
    done_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  const double wall = ms_between(t0, Clock::now());
  service_ewma_ms_ = 0.8 * service_ewma_ms_ + 0.2 * wall;
  if (job.results.size() < n) {
    cancel_remaining_cells_locked(job);
    finish_job_locked(job, JobState::kCancelled);
  } else {
    finish_job_locked(job, JobState::kDone);
  }
}

CellResult Server::run_cell(Job& job, std::size_t index) {
  const ResolvedCell& cell = job.cells[index];
  const auto c0 = Clock::now();
  const core::ExperimentRunner runner(job.cfg);
  core::RunResult r;
  bool warm_hit = false;
  if (cache_.enabled() && job.cfg.warmup > 0) {
    // Cross-request warm-start sharing: the cache key is the same
    // conservative warmup identity the sweep engine groups by, so a hit is
    // exactly a --reuse-warmup group membership that happens to span
    // requests (and, for fault-free cells, supplies).
    const std::string key =
        core::warmup_key_bytes(job.cfg, cell.profile, cell.scheme, cell.vdd);
    std::shared_ptr<const core::RunSnapshot> snap = cache_.lookup(key);
    if (snap != nullptr) {
      warm_hit = true;
    } else {
      snap = std::make_shared<const core::RunSnapshot>(
          runner.capture(cell.profile, cell.scheme, cell.vdd, job.cfg.warmup));
      cache_.insert(key, snap);
    }
    r = runner.run_from(*snap, cell.vdd);
  } else {
    r = cell.scheme ? runner.run(cell.profile, *cell.scheme, cell.vdd)
                    : runner.run_fault_free(cell.profile, cell.vdd);
  }
  CellResult out;
  out.index = index;
  out.benchmark = r.benchmark;
  out.scheme = r.scheme;
  out.vdd = r.vdd;
  out.committed = r.committed;
  out.cycles = r.cycles;
  out.ipc = r.ipc;
  out.fault_rate_pct = r.fault_rate_pct;
  out.checksum = core::result_checksum(r);
  out.warm_hit = warm_hit;
  out.wall_ms = ms_between(c0, Clock::now());
  if (job.cfg.timeline_interval > 0 && r.timeline != nullptr) {
    std::ostringstream os;
    r.timeline->write_json(os, /*include_counters=*/false);
    out.timeline_json = os.str();
  }
  return out;
}

void Server::cancel_remaining_cells_locked(Job& job) {
  for (std::size_t i = job.results.size(); i < job.cells.size(); ++i) {
    CellResult c;
    c.index = i;
    c.benchmark = job.cells[i].profile.name;
    c.scheme = job.cells[i].scheme ? job.cells[i].scheme->name : "fault-free";
    c.vdd = job.cells[i].vdd;
    c.cancelled = true;
    job.results.push_back(std::move(c));
    cells_cancelled_.inc();
  }
}

void Server::finish_job_locked(Job& job, JobState state) {
  job.state = state;
  switch (state) {
    case JobState::kDone: jobs_completed_.inc(); break;
    case JobState::kCancelled: jobs_cancelled_.inc(); break;
    case JobState::kFailed: jobs_failed_.inc(); break;
    case JobState::kQueued:
    case JobState::kRunning: break;  // not terminal; never passed here
  }
  done_cv_.notify_all();
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

StatSet Server::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  // Counters only move forward, so syncing the cache's atomically-read
  // totals into the registry handles is a non-negative delta bump.
  const SnapshotCache::Stats cs = cache_.stats();
  cache_hits_.inc(cs.hits - cache_hits_.value());
  cache_misses_.inc(cs.misses - cache_misses_.value());
  cache_insertions_.inc(cs.insertions - cache_insertions_.value());
  cache_evictions_.inc(cs.evictions - cache_evictions_.value());
  queue_depth_gauge_.set(static_cast<double>(queue_.size()));
  queue_peak_gauge_.set(static_cast<double>(queue_peak_));
  StatSet s;
  reg_.export_to(s);
  s.set("serve.cache.size", static_cast<double>(cs.size));
  s.set("serve.cache.capacity", static_cast<double>(cs.capacity));
  s.set("serve.queue.limit", static_cast<double>(cfg_.queue_limit));
  s.set("serve.workers", static_cast<double>(workers_.size()));
  s.set("serve.service_ewma_ms", service_ewma_ms_);
  return s;
}

}  // namespace vasim::serve
