// Tests for the completeness extensions: in-order-engine fault handling
// (Section 2.2) and configuration-sweep properties of the pipeline.
#include <gtest/gtest.h>

#include "src/cpu/pipeline.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

namespace vasim::cpu {
namespace {

timing::FaultModel make_fm(double vdd, u64 seed = 7) {
  timing::PathModelConfig pcfg;
  pcfg.seed = seed;
  pcfg.p_faulty_high = 0.08;
  pcfg.p_faulty_low = 0.02;
  return timing::FaultModel(pcfg, vdd);
}

TEST(InOrderFaults, OracleRatesScale) {
  const timing::FaultModel fm = make_fm(0.97);
  int base = 0, scaled = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Pc pc = 0x1000 + static_cast<Pc>(i % 4000) * 4;
    base += fm.query_inorder(pc, i, 0.0).faulty;
    scaled += fm.query_inorder(pc, i, 0.5).faulty;
  }
  EXPECT_EQ(base, 0);
  EXPECT_GT(scaled, n / 200);  // roughly 0.5 * 8% * band yield
  EXPECT_LT(scaled, n / 10);
}

TEST(InOrderFaults, StageDistributionFavoursMidPipeline) {
  const timing::FaultModel fm = make_fm(0.97);
  int fetch_decode = 0, mid = 0, total = 0;
  for (int i = 0; i < 400000; ++i) {
    const auto d = fm.query_inorder(0x1000 + static_cast<Pc>(i % 8000) * 4, i, 1.0);
    if (!d.faulty) continue;
    ++total;
    if (d.stage == timing::InOrderStage::kFetch || d.stage == timing::InOrderStage::kDecode) {
      ++fetch_decode;
    }
    if (d.stage == timing::InOrderStage::kRename || d.stage == timing::InOrderStage::kDispatch) {
      ++mid;
    }
  }
  ASSERT_GT(total, 100);
  // Section 2.2 / [17]: fetch and decode violations are rare.
  EXPECT_LT(fetch_decode, total / 4);
  EXPECT_GT(mid, total / 2);
}

TEST(InOrderFaults, DisabledByDefault) {
  const auto prof = workload::spec2006_profile("bzip2");
  workload::TraceGenerator g(prof);
  const timing::FaultModel fm = make_fm(0.97, prof.seed);
  CoreConfig cfg;
  Pipeline p(cfg, scheme_razor(), &g, &fm, nullptr);
  const PipelineResult r = p.run(15000, 5000);
  EXPECT_EQ(r.stats.count("fault.inorder.stall"), 0u);
  EXPECT_EQ(r.stats.count("fault.inorder.replay"), 0u);
}

TEST(InOrderFaults, PredictorSchemesStallRazorReplays) {
  const auto prof = workload::spec2006_profile("bzip2");
  const timing::FaultModel fm = make_fm(0.97, prof.seed);

  SchemeConfig abs = scheme_abs();
  abs.inorder_fault_scale = 0.5;
  workload::TraceGenerator ga(prof);
  CoreConfig cfg;
  Pipeline pa(cfg, abs, &ga, &fm, nullptr);  // predictor unused for in-order path
  const PipelineResult ra = pa.run(15000, 5000);
  EXPECT_EQ(ra.committed, 15000u);
  EXPECT_GT(ra.stats.count("fault.inorder.stall"), 20u);

  SchemeConfig razor = scheme_razor();
  razor.inorder_fault_scale = 0.5;
  workload::TraceGenerator gr(prof);
  Pipeline pr(cfg, razor, &gr, &fm, nullptr);
  const PipelineResult rr = pr.run(15000, 5000);
  EXPECT_EQ(rr.committed, 15000u);
  EXPECT_GT(rr.stats.count("fault.inorder.replay"), 20u);
  // Replay recovery costs more than planned stalls.
  EXPECT_GT(rr.cycles, ra.cycles);
}

TEST(InOrderFaults, OverheadIsModest) {
  const auto prof = workload::spec2006_profile("gobmk");
  const timing::FaultModel fm = make_fm(0.97, prof.seed);
  auto run_with = [&](double scale) {
    SchemeConfig abs = scheme_abs();
    abs.inorder_fault_scale = scale;
    workload::TraceGenerator g(prof);
    CoreConfig cfg;
    Pipeline p(cfg, abs, &g, &fm, nullptr);
    return p.run(15000, 5000).cycles;
  };
  const Cycle off = run_with(0.0);
  const Cycle on = run_with(0.3);
  EXPECT_GE(on, off);
  EXPECT_LT(static_cast<double>(on), static_cast<double>(off) * 1.10)
      << "in-order handling must stay a minor cost (the paper calls these rare)";
}

// ---- configuration-sweep properties ---------------------------------------

struct ConfigCase {
  const char* name;
  int issue_width;
  int rob;
  int iq;
  int alus;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, CompletesAndStaysWithinStructuralBounds) {
  const ConfigCase c = GetParam();
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  cfg.issue_width = c.issue_width;
  cfg.fetch_width = c.issue_width;
  cfg.dispatch_width = c.issue_width;
  cfg.commit_width = c.issue_width;
  cfg.rob_entries = c.rob;
  cfg.iq_entries = c.iq;
  cfg.simple_alus = c.alus;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  const PipelineResult r = p.run(15000, 5000);
  EXPECT_EQ(r.committed, 15000u);
  EXPECT_GT(r.ipc(), 0.05);
  EXPECT_LE(r.ipc(), static_cast<double>(c.issue_width) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSweep,
    ::testing::Values(ConfigCase{"narrow", 2, 32, 8, 1}, ConfigCase{"core1", 4, 128, 32, 2},
                      ConfigCase{"wide", 8, 256, 64, 4}, ConfigCase{"tiny_rob", 4, 16, 8, 2},
                      ConfigCase{"big_iq", 4, 128, 64, 3}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) { return info.param.name; });

class WindowMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(WindowMonotonic, LargerRobNeverHurtsMemoryBoundIpc) {
  const auto prof = workload::spec2006_profile("mcf");
  auto run_rob = [&](int rob) {
    workload::TraceGenerator g(prof);
    CoreConfig cfg;
    cfg.rob_entries = rob;
    Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
    return p.run(10000, 5000).ipc();
  };
  const int rob = GetParam();
  // MLP grows with window size on a miss-bound workload.
  EXPECT_GE(run_rob(rob * 2), run_rob(rob) * 0.95);
}

INSTANTIATE_TEST_SUITE_P(RobSizes, WindowMonotonic, ::testing::Values(16, 32, 64));

TEST(WrongPath, FetchesAndSquashesWithoutCommitting) {
  const auto prof = workload::spec2006_profile("mcf");  // mispredict-heavy
  workload::TraceGenerator g(prof);
  CoreConfig cfg;
  cfg.model_wrong_path = true;
  Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
  const PipelineResult r = p.run(15000, 5000);
  EXPECT_EQ(r.committed, 15000u);
  EXPECT_GT(r.stats.count("ev.wrongpath_fetch"), 200u);
  EXPECT_GT(r.stats.count("ev.squash"), 200u);
  // Commits must still be exactly the true path.
  EXPECT_EQ(r.stats.count("ev.commit"), 15000u);
}

TEST(WrongPath, BurnsEnergyButBarelyMovesIpc) {
  const auto prof = workload::spec2006_profile("gcc");
  auto run_with = [&](bool wp) {
    workload::TraceGenerator g(prof);
    CoreConfig cfg;
    cfg.model_wrong_path = wp;
    Pipeline p(cfg, scheme_fault_free(), &g, nullptr, nullptr);
    return p.run(15000, 5000);
  };
  const PipelineResult off = run_with(false);
  const PipelineResult on = run_with(true);
  // Extra issue/execute events from the wrong path...
  EXPECT_GT(on.stats.count("ev.select"), off.stats.count("ev.select"));
  // ...with only a second-order IPC effect (resolution still gates fetch).
  EXPECT_NEAR(on.ipc(), off.ipc(), 0.25 * off.ipc());
}

TEST(WrongPath, CoexistsWithReplayRecovery) {
  const auto prof = workload::spec2006_profile("gobmk");
  workload::TraceGenerator g(prof);
  timing::PathModelConfig pcfg{prof.seed, 0.12, 0.04};
  const timing::FaultModel fm(pcfg, 0.97);
  SchemeConfig razor = scheme_razor();
  razor.recovery = RecoveryModel::kSquashRefetch;
  CoreConfig cfg;
  cfg.model_wrong_path = true;
  Pipeline p(cfg, razor, &g, &fm, nullptr);
  const PipelineResult r = p.run(15000, 5000);
  EXPECT_EQ(r.committed, 15000u);
  EXPECT_GT(r.stats.count("fault.replays"), 50u);
  EXPECT_GT(r.stats.count("ev.wrongpath_fetch"), 50u);
}

TEST(SchemeProperties, EpNeverFasterThanFaultFree) {
  for (const char* name : {"bzip2", "sjeng", "xalancbmk"}) {
    const auto prof = workload::spec2006_profile(name);
    timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0 * prof.fr_calib_high,
                                 prof.fr_low_pct / 100.0 * prof.fr_calib_low};
    const timing::FaultModel fm(pcfg, 0.97);
    workload::TraceGenerator gf(prof), ge(prof);
    CoreConfig cfg;
    Pipeline pf(cfg, scheme_fault_free(), &gf, nullptr, nullptr);
    const Cycle ff = pf.run(15000, 5000).cycles;
    // EP with an always-predicting oracle cannot beat fault-free: every
    // predicted fault costs a full stall cycle.
    struct AlwaysOracle final : FaultPredictor {
      const timing::FaultModel* fm;
      explicit AlwaysOracle(const timing::FaultModel* m) : fm(m) {}
      FaultPrediction predict(Pc pc, u64, Cycle now) override {
        const auto d = fm->query(pc, timing::FaultClass::kAluLike, now);
        return FaultPrediction{d.core_faulty, d.stage, false};
      }
      void train(Pc, u64, bool, timing::OooStage) override {}
      void mark_critical(Pc, u64, bool) override {}
    } oracle{&fm};
    Pipeline pe(cfg, scheme_error_padding(), &ge, &fm, &oracle);
    const Cycle ep = pe.run(15000, 5000).cycles;
    EXPECT_GE(ep, ff) << name;
  }
}

}  // namespace
}  // namespace vasim::cpu
