// Static timing analysis over a netlist, deterministic and statistical.
//
// Deterministic STA computes per-signal arrival times (topological longest
// path with library cell delays) and the logic depth reported in Table 3.
// Statistical STA runs a Monte-Carlo over process-variation die samples and
// reports the mu + 2 sigma critical delay the fault model is built on
// (Section 4.3).
#ifndef VASIM_CIRCUIT_STA_HPP
#define VASIM_CIRCUIT_STA_HPP

#include "src/circuit/netlist.hpp"
#include "src/timing/process_variation.hpp"

namespace vasim::circuit {

/// Deterministic timing summary.
struct StaResult {
  double critical_delay_ps = 0.0;  ///< longest input-to-output delay
  int logic_depth = 0;             ///< gates on the longest (by count) path
  SigId critical_signal = kNoSig;  ///< endpoint of the critical path
};

/// Statistical timing summary across Monte-Carlo dies.
struct StatisticalStaResult {
  double mu_ps = 0.0;
  double sigma_ps = 0.0;
  double mu_plus_2sigma_ps = 0.0;
  double min_ps = 0.0;
  double max_ps = 0.0;
  int dies = 0;
};

/// Longest-path analysis with nominal cell delays.
StaResult analyze_nominal(const Netlist& netlist);

/// Monte-Carlo statistical STA: per die, every gate's delay is scaled by the
/// process-variation factor; the die's critical delay is the max arrival.
StatisticalStaResult analyze_statistical(const Netlist& netlist,
                                         const timing::ProcessVariation& pv, int dies);

/// Same, under VARIUS-style spatially correlated variation.  Correlated
/// neighborhoods stop per-gate noise from averaging out along a path, so
/// the critical-delay sigma grows with the systematic fraction.
StatisticalStaResult analyze_statistical(const Netlist& netlist,
                                         const timing::SpatialVariation& sv, int dies);

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_STA_HPP
