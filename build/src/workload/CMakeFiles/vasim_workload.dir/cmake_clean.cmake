file(REMOVE_RECURSE
  "CMakeFiles/vasim_workload.dir/inputs.cpp.o"
  "CMakeFiles/vasim_workload.dir/inputs.cpp.o.d"
  "CMakeFiles/vasim_workload.dir/profiles.cpp.o"
  "CMakeFiles/vasim_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/vasim_workload.dir/simpoint.cpp.o"
  "CMakeFiles/vasim_workload.dir/simpoint.cpp.o.d"
  "CMakeFiles/vasim_workload.dir/trace_file.cpp.o"
  "CMakeFiles/vasim_workload.dir/trace_file.cpp.o.d"
  "CMakeFiles/vasim_workload.dir/trace_generator.cpp.o"
  "CMakeFiles/vasim_workload.dir/trace_generator.cpp.o.d"
  "libvasim_workload.a"
  "libvasim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
