// Parallel sweep engine: fans a grid of independent (benchmark, scheme,
// VDD) simulations out over a thread pool and returns results in submission
// order.
//
// Determinism guarantee: every job constructs its own TraceGenerator,
// FaultModel, predictor and Pipeline inside ExperimentRunner::run, and no
// state is shared between jobs, so the RunResults are bitwise identical
// regardless of worker count.  `VASIM_JOBS=1` reproduces the historical
// strictly-sequential behaviour; the default is hardware_concurrency().
//
// Results can be serialized to a machine-readable `BENCH_<name>.json` so the
// perf trajectory of the reproduction is diffable across PRs (schema in
// docs/sweep.md).
#ifndef VASIM_CORE_SWEEP_HPP
#define VASIM_CORE_SWEEP_HPP

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/core/runner.hpp"

namespace vasim::core {

/// Cooperative cancellation handle shared between a sweep and its caller
/// (e.g. the serve daemon's per-job cancel).  Cancelling never interrupts a
/// running simulation: jobs that have already started run to completion and
/// keep their (bitwise-unchanged) results; jobs not yet started come back
/// with SweepOutcome::cancelled set and a default RunResult.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;  // the flag is the shared identity
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { flag_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

/// One cell of a sweep grid.  `scheme == nullopt` requests the fault-free
/// baseline at `vdd`; `config` overrides the sweep-wide RunnerConfig for
/// jobs that vary machine or predictor parameters (ablations).
struct SweepJob {
  workload::BenchmarkProfile profile;
  std::optional<cpu::SchemeConfig> scheme;
  double vdd = timing::SupplyPoints::kNominal;
  std::optional<RunnerConfig> config;
};

/// One finished job: the simulation outcome plus its wall-clock cost and
/// scheduling info (start offset from sweep t0 and the pool worker that ran
/// it -- trace/progress metadata, deliberately excluded from the checksum).
struct SweepOutcome {
  RunResult result;
  double wall_ms = 0.0;
  double start_ms = 0.0;
  std::size_t worker = 0;
  /// Set when the sweep's CancelToken fired before this job started; the
  /// result is default-constructed and must not be interpreted.
  bool cancelled = false;
};

/// A whole sweep: outcomes in submission order plus aggregate timing.
struct SweepReport {
  std::vector<SweepOutcome> jobs;
  double wall_ms = 0.0;      ///< end-to-end sweep wall time
  std::size_t workers = 1;   ///< pool size the sweep ran with
  std::size_t cancelled_jobs = 0;  ///< outcomes with .cancelled set
  // Warm-start sharing accounting (all zero unless set_reuse_warmup(true)).
  std::size_t warmup_groups = 0;     ///< shared-warmup groups actually captured
  u64 warmup_cycles_simulated = 0;   ///< warmup cycles run once per shared group
  u64 warmup_cycles_saved = 0;       ///< warmup cycles the other members skipped
};

/// Worker count resolution: `VASIM_JOBS` when set, else hardware threads.
/// Garbage values (non-numeric, 0, > 256) warn on stderr and fall back /
/// clamp instead of silently misbehaving (src/common/env.hpp, env_count).
[[nodiscard]] std::size_t sweep_workers_from_env();

/// Lockstep batch width resolution: validated `VASIM_BATCH` when set, else
/// 1 (batching stays opt-in; same env_count validation as VASIM_JOBS).
[[nodiscard]] std::size_t sweep_batch_from_env();

/// Thread-pooled experiment fan-out.  Stateless between sweeps.
class SweepRunner {
 public:
  explicit SweepRunner(const RunnerConfig& cfg = {},
                       std::size_t workers = sweep_workers_from_env())
      : cfg_(cfg), workers_(workers == 0 ? 1 : workers) {}

  /// Runs every job; outcomes come back in submission order.  If any job
  /// threw, the first failure (by submission index) is rethrown after the
  /// whole grid has drained -- one bad job never deadlocks the pool.
  [[nodiscard]] SweepReport run(const std::vector<SweepJob>& jobs) const;

  /// Convenience: just the RunResults, submission order.
  [[nodiscard]] std::vector<RunResult> run_results(const std::vector<SweepJob>& jobs) const;

  [[nodiscard]] std::size_t workers() const { return workers_; }
  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }

  /// Live `jobs done/total + ETA` line on stderr while the sweep runs.
  void set_progress(bool on) { progress_ = on; }

  /// Warm-start sharing: jobs whose warmup keys match (src/core/snapshot.hpp
  /// -- conservatively, everything that can influence machine state at the
  /// warmup boundary) run their warmup once per group and fork the
  /// measurement from the shared snapshot.  Results are bitwise identical to
  /// the straight-through sweep (tests/test_snap.cpp pins the checksum);
  /// only the SweepReport's warmup_* accounting and wall times change.
  void set_reuse_warmup(bool on) { reuse_warmup_ = on; }

  /// Lockstep batching (the third execution mode, src/core/batch.hpp): jobs
  /// are advanced B at a time through one fused cycle loop instead of one
  /// per pool task.  Composes with both knobs above -- each pool worker runs
  /// a whole batch, and warm-started members fork from their group snapshot
  /// straight into the rotation.  Results stay bitwise identical for any B;
  /// per-job wall_ms becomes "time until this member retired within its
  /// batch" (metadata only, never checksummed).  B <= 1 disables batching.
  void set_batch(std::size_t batch) { batch_ = batch == 0 ? 1 : batch; }
  [[nodiscard]] std::size_t batch() const { return batch_; }

  /// Cooperative cancellation: when `token` is non-null, run() checks it
  /// between jobs (between chunks in batch mode).  Jobs that have not
  /// started when the token fires are skipped and come back with
  /// SweepOutcome::cancelled; jobs already running finish normally and their
  /// results stay bitwise identical to an uncancelled sweep's
  /// (tests/test_sweep.cpp pins both halves).  Non-owning; must outlive
  /// run().
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

 private:
  RunnerConfig cfg_;
  std::size_t workers_;
  std::size_t batch_ = sweep_batch_from_env();
  bool progress_ = false;
  bool reuse_warmup_ = false;
  const CancelToken* cancel_ = nullptr;
};

/// FNV-1a checksum over the order-sensitive, thread-count-invariant fields
/// of a result sequence (identities, counts, bit patterns of the doubles,
/// and all stat counters).  Equal checksums across worker counts are the
/// determinism witness used by tests and bench_sweep_speedup.
[[nodiscard]] u64 sweep_checksum(const std::vector<RunResult>& results);
[[nodiscard]] u64 sweep_checksum(const SweepReport& report);

/// Checksum of a single result (same field walk as sweep_checksum but no
/// sequence-length prefix).  This is the per-job identity the serve daemon
/// reports to clients and the concurrency-oracle tests compare against
/// standalone runs.
[[nodiscard]] u64 result_checksum(const RunResult& result);

/// Serializes a sweep as JSON: run identity, per-job metrics and wall
/// times, aggregate wall time, worker count and checksum.
void write_sweep_json(std::ostream& os, const std::string& name, const SweepReport& report);

/// Writes `BENCH_<name>.json` in the working directory unless `VASIM_JSON=0`.
/// Returns the path written, or empty when disabled / on I/O failure.
std::string emit_sweep_json(const std::string& name, const SweepReport& report);

/// Serializes a sweep as a Chrome-trace-event JSON document (open in
/// https://ui.perfetto.dev or chrome://tracing): one complete span per job
/// on the thread row of the pool worker that ran it, 1 trace us = 1 wall us.
void write_chrome_trace(std::ostream& os, const SweepReport& report);

}  // namespace vasim::core

#endif  // VASIM_CORE_SWEEP_HPP
