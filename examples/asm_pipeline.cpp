// Example: run a real assembly program through the timing pipeline.
//
// Assembles a dot-product kernel in the mini ISA, executes it functionally,
// then drives the cycle-level pipeline with the same program under the
// fault-free machine and under ABS at 0.97 V, showing how the TEP learns the
// recurring faulty PCs (replays concentrate at the start).
//
// Pass a file name to also dump a Kanata pipeline trace of the ABS run
// (viewable in Konata): asm_pipeline trace.kanata
#include <fstream>
#include <iostream>
#include <memory>

#include "src/cpu/observer.hpp"

#include "src/common/table.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"
#include "src/timing/fault_model.hpp"

int main(int argc, char** argv) {
  using namespace vasim;
  const char* trace_path = argc > 1 ? argv[1] : nullptr;

  const isa::Program prog = isa::assemble(R"(
      # dot = sum(a[i] * b[i]) over 512 elements; arrays at 0x100000/0x200000
      lui  r10, 0x10        # &a
      lui  r11, 0x20        # &b
      addi r1, r0, 0        # i
      addi r2, r0, 512      # n
      addi r3, r0, 0        # dot
      addi r9, r0, 3        # shift for 8-byte stride
    init:                   # a[i] = i + 1, b[i] = 2
      shl  r4, r1, r9
      add  r5, r10, r4
      add  r6, r11, r4
      addi r7, r1, 1
      st   r7, 0(r5)
      addi r8, r0, 2
      st   r8, 0(r6)
      addi r1, r1, 1
      blt  r1, r2, init
      addi r1, r0, 0
    loop:
      shl  r4, r1, r9
      add  r5, r10, r4
      add  r6, r11, r4
      ld   r7, 0(r5)
      ld   r8, 0(r6)
      mul  r7, r7, r8
      add  r3, r3, r7
      addi r1, r1, 1
      blt  r1, r2, loop
      st   r3, 0(r10)
      halt
  )");

  // Functional reference run.
  isa::FunctionalCore ref(&prog);
  isa::DynInst d;
  u64 dynamic_instructions = 0;
  while (ref.next(d)) ++dynamic_instructions;
  std::cout << "dot-product kernel: " << prog.size() << " static / " << dynamic_instructions
            << " dynamic instructions; architectural dot = " << ref.load(0x100000) << "\n\n";

  // Fault-free timing run.
  {
    isa::FunctionalCore src(&prog);
    cpu::CoreConfig cfg;
    cpu::Pipeline pipe(cfg, cpu::scheme_fault_free(), &src, nullptr, nullptr);
    const cpu::PipelineResult r = pipe.run(dynamic_instructions);
    std::cout << "fault-free: " << r.committed << " committed in " << r.cycles
              << " cycles (IPC " << TextTable::fmt(r.ipc()) << ")\n";
  }

  // ABS at the high fault rate; watch the TEP learn.
  {
    isa::FunctionalCore src(&prog);
    timing::PathModelConfig pcfg;
    pcfg.seed = 42;
    pcfg.p_faulty_high = 0.10;
    pcfg.p_faulty_low = 0.03;
    const timing::FaultModel fm(pcfg, timing::SupplyPoints::kHighFault);
    core::TimingErrorPredictor tep({}, &fm.environment());
    cpu::CoreConfig cfg;
    cpu::Pipeline pipe(cfg, cpu::scheme_abs(), &src, &fm, &tep);

    std::unique_ptr<std::ofstream> trace;
    std::unique_ptr<cpu::KanataTraceWriter> writer;
    if (trace_path != nullptr) {
      trace = std::make_unique<std::ofstream>(trace_path);
      writer = std::make_unique<cpu::KanataTraceWriter>(trace.get(), 5000);
      pipe.set_observer(writer.get());
    }

    u64 last_replays = 0;
    std::cout << "\nABS @ 0.97V, replays per 1000 committed instructions:\n";
    for (u64 chunk = 1; chunk * 1000 <= dynamic_instructions; ++chunk) {
      while (pipe.committed() < chunk * 1000 && pipe.step()) {
      }
      const u64 replays = pipe.registry().counter_value("fault.replays");
      std::cout << "  [" << (chunk - 1) * 1000 << ".." << chunk * 1000
                << "): " << (replays - last_replays) << "\n";
      last_replays = replays;
    }
    while (pipe.step()) {
    }
    const StatSet s = pipe.snapshot_stats();
    std::cout << "total: " << s.count("fault.actual") << " faults, " << s.count("fault.handled")
              << " handled by violation-aware scheduling, " << s.count("fault.replays")
              << " replays; " << pipe.committed() << " committed in " << pipe.now()
              << " cycles (IPC "
              << TextTable::fmt(static_cast<double>(pipe.committed()) /
                                static_cast<double>(pipe.now()))
              << ")\n"
              << "TEP learns the recurring faulty PCs, so replays die out after the\n"
              << "first loop iterations while throughput stays near fault-free.\n";
    if (writer) {
      std::cout << "\nKanata trace (" << writer->instructions_logged()
                << " instructions) written to " << trace_path << "\n";
    }
  }
  return 0;
}
