#include "src/core/tep.hpp"

#include <stdexcept>

namespace vasim::core {

TimingErrorPredictor::TimingErrorPredictor(const TepConfig& cfg, const timing::Environment* env)
    : cfg_(cfg), env_(env), thermal_(env), voltage_(env),
      table_(static_cast<std::size_t>(cfg.entries)) {
  if (cfg.entries <= 0 || (cfg.entries & (cfg.entries - 1)) != 0) {
    throw std::invalid_argument("TimingErrorPredictor: entries must be a power of two");
  }
}

std::size_t TimingErrorPredictor::index_of(Pc pc, u64 history) const {
  const u64 hist = history & ((1ULL << cfg_.history_bits) - 1);
  return static_cast<std::size_t>(((pc >> 2) ^ hist) & static_cast<u64>(cfg_.entries - 1));
}

cpu::FaultPrediction TimingErrorPredictor::predict(Pc pc, u64 history, Cycle now) {
  ++lookups_;
  cpu::FaultPrediction p;
  const Entry& e = table_[index_of(pc, history)];
  if (!e.valid || e.tag != tag_of(pc) || e.counter == 0) return p;
  if (cfg_.sensor_gating && env_ != nullptr && e.counter < cfg_.counter_max) {
    // Weak entries only predict when conditions favour timing errors.
    if (!thermal_.hot(now) && !voltage_.droopy(now)) return p;
  }
  p.predicted = true;
  p.stage = static_cast<timing::OooStage>(e.stage);
  p.critical = e.crit_counter >= 2;
  ++predictions_;
  return p;
}

void TimingErrorPredictor::train(Pc pc, u64 history, bool faulty, timing::OooStage stage) {
  Entry& e = table_[index_of(pc, history)];
  const u16 tag = tag_of(pc);
  if (faulty) {
    if (e.valid && e.tag == tag) {
      if (e.counter < cfg_.counter_max) ++e.counter;
      e.stage = static_cast<u8>(stage);
    } else {
      // Most-recent-entry allocation: faults evict whoever owned the slot.
      e = Entry{tag, cfg_.counter_on_alloc, static_cast<u8>(stage), 0, true};
      ++allocations_;
    }
  } else if (e.valid && e.tag == tag && e.counter > 0) {
    --e.counter;
  }
}

void TimingErrorPredictor::mark_critical(Pc pc, u64 history, bool critical) {
  Entry& e = table_[index_of(pc, history)];
  if (!e.valid || e.tag != tag_of(pc)) return;
  if (critical) {
    if (e.crit_counter < 3) ++e.crit_counter;
  } else if (e.crit_counter > 0) {
    --e.crit_counter;
  }
}

u64 TimingErrorPredictor::storage_bits() const {
  // tag(16) + counter(2) + stage(3) + criticality(2) + valid(1) per entry.
  return static_cast<u64>(cfg_.entries) * (16 + 2 + 3 + 2 + 1);
}

}  // namespace vasim::core
