// CPI-stack cycle accounting: where did every commit slot go?
//
// The paper's comparison of fault-tolerance schemes is an argument about
// cycle attribution -- replay storms under Razor, global stalls under Error
// Padding, localized slot freezes and delayed broadcasts under the VTE --
// so the simulator attributes EVERY commit slot of every cycle to exactly
// one cause.  The hard invariant
//
//     sum over causes(slots) == cycles * commit_width
//
// holds for any scheme, workload and measurement window (it is enforced by
// tests/test_obs.cpp across the whole sweep grid).  CPI contribution of a
// cause is slots / (commit_width * committed).
//
// Attribution rules (evaluated once per cycle at the retire stage; all slots
// lost in one cycle share the cause of the ROB head):
//   base            slot committed an instruction (useful work)
//   frontend        ROB empty: fetch/decode latency, icache misses,
//                   mispredict redirect, source drain
//   squash_refetch  ROB empty because a replay squash is being refetched
//   data_dep        head waits on operands or a non-memory execution chain
//   memory          head is (or waits on) a load/store in flight
//   slot_freeze     head delayed by a VTE slot freeze / frozen issue slot,
//                   or its own predicted-fault extra cycle
//   delayed_bcast   head's producer broadcasts late (VTE extended latency)
//   ep_stall        Error-Padding global stall cycle
//   replay          Razor replay micro-stall, squashless recovery, or a
//                   retire-stage violation's extra retire cycle
#ifndef VASIM_OBS_CPI_HPP
#define VASIM_OBS_CPI_HPP

#include <array>
#include <string>
#include <string_view>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace vasim::obs {

enum class CpiCause : int {
  kBase = 0,
  kFrontend = 1,
  kDataDep = 2,
  kMemory = 3,
  kSlotFreeze = 4,
  kDelayedBroadcast = 5,
  kEpStall = 6,
  kReplay = 7,
  kSquashRefetch = 8,
};

inline constexpr int kNumCpiCauses = 9;

/// Short machine name ("base", "frontend", ...) -- also the suffix of the
/// exported StatSet counter "cpi.<name>".
constexpr std::string_view to_string(CpiCause c) {
  constexpr std::array<std::string_view, kNumCpiCauses> names = {
      "base",     "frontend",      "data_dep", "memory",        "slot_freeze",
      "delayed_bcast", "ep_stall", "replay",   "squash_refetch"};
  return names[static_cast<int>(c)];
}

/// StatSet counter name for a cause ("cpi.base", ...).
std::string cpi_counter_name(CpiCause c);

/// A complete per-cause slot attribution for one run (or one measurement
/// window).  Plain aggregate so it rides inside RunResult by value.
struct CpiStack {
  std::array<u64, kNumCpiCauses> slots{};

  [[nodiscard]] u64& operator[](CpiCause c) { return slots[static_cast<int>(c)]; }
  [[nodiscard]] u64 operator[](CpiCause c) const { return slots[static_cast<int>(c)]; }

  /// Total attributed slots; the invariant pins this to cycles*commit_width.
  [[nodiscard]] u64 total() const;

  /// Lost (non-base) slots.
  [[nodiscard]] u64 lost() const { return total() - slots[0]; }

  /// CPI contribution of one cause: slots / (width * committed).
  [[nodiscard]] double cpi_of(CpiCause c, int commit_width, u64 committed) const;

  /// Rebuilds a stack from the "cpi.*" counters a pipeline run exported.
  [[nodiscard]] static CpiStack from_stats(const StatSet& stats);
};

}  // namespace vasim::obs

#endif  // VASIM_OBS_CPI_HPP
