// Lockstep batched execution engine (ROADMAP item 5).
//
// A BatchRunner advances B independent simulations through one fused cycle
// loop: members are set up together (scheme wiring, warm-start restore and
// phase limits hoisted out of the hot loop), then rotated through in slices
// of kSliceCycles cycles each -- `for rotation { for member { step_n } }` --
// with the next member's scheduler masks prefetched while the current one
// runs.  Retired members are compacted out of the rotation without touching
// survivors.
//
// Determinism: members share no mutable state, and each member executes the
// exact step()/commit-limit/base-read sequence ExperimentRunner::run (or
// run_from, for warm-started members) would have executed, so the RunResults
// are bitwise identical to single-job execution regardless of batch width or
// slice size (tests/test_batch.cpp pins the sweep checksum across widths).
#ifndef VASIM_CORE_BATCH_HPP
#define VASIM_CORE_BATCH_HPP

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "src/core/sweep.hpp"

namespace vasim::core {

class RunSnapshot;

/// Lockstep executor.  Stateless between calls; deterministic.
/// (sweep_batch_from_env, declared in sweep.hpp, resolves VASIM_BATCH.)
class BatchRunner {
 public:
  explicit BatchRunner(const RunnerConfig& cfg = {},
                       std::size_t batch = sweep_batch_from_env())
      : cfg_(cfg), batch_(batch == 0 ? 1 : batch) {}

  /// One grid cell: the job plus an optional shared warm-start snapshot
  /// (same semantics as ExperimentRunner::run_from -- the snapshot's warmup
  /// key must match, and `job->vdd` may only diverge from the captured
  /// supply for fault-free snapshots).  Non-owning pointers.
  struct Cell {
    const SweepJob* job = nullptr;
    const RunSnapshot* warm = nullptr;
  };

  /// Runs `n` cells in lockstep batches of batch().  `results[i]` receives
  /// cell i's outcome unless `errors[i]` is set (a failing member never
  /// takes the rest of its batch down).  `on_done`, when set, fires with
  /// the cell index as each member retires -- progress/metadata hook.
  void run_cells(const Cell* cells, std::size_t n, RunResult* results,
                 std::exception_ptr* errors,
                 const std::function<void(std::size_t)>& on_done = {}) const;

  /// Convenience: cold-start every job, rethrow the first failure (by
  /// submission index), return results in submission order.
  [[nodiscard]] std::vector<RunResult> run(const std::vector<SweepJob>& jobs) const;

  [[nodiscard]] std::size_t batch() const { return batch_; }
  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }

 private:
  RunnerConfig cfg_;
  std::size_t batch_;
};

}  // namespace vasim::core

#endif  // VASIM_CORE_BATCH_HPP
