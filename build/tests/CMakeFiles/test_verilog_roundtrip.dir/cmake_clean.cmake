file(REMOVE_RECURSE
  "CMakeFiles/test_verilog_roundtrip.dir/test_verilog_roundtrip.cpp.o"
  "CMakeFiles/test_verilog_roundtrip.dir/test_verilog_roundtrip.cpp.o.d"
  "test_verilog_roundtrip"
  "test_verilog_roundtrip.pdb"
  "test_verilog_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
