#include "src/workload/simpoint.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/common/rng.hpp"

namespace vasim::workload {
namespace {

/// Random projection of a sparse BBV (pc-bucket -> count) to dense dims.
std::vector<double> project(const std::unordered_map<u64, u64>& bbv, int dims, u64 seed) {
  std::vector<double> out(static_cast<std::size_t>(dims), 0.0);
  double norm = 0.0;
  for (const auto& [bucket, count] : bbv) norm += static_cast<double>(count);
  if (norm <= 0) return out;
  for (const auto& [bucket, count] : bbv) {
    const double w = static_cast<double>(count) / norm;
    for (int d = 0; d < dims; ++d) {
      const u64 h = hash_combine(hash_combine(seed, bucket), static_cast<u64>(d));
      out[static_cast<std::size_t>(d)] += w * (hash_to_unit(h) * 2.0 - 1.0);
    }
  }
  return out;
}

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

SimPointResult select_phases(isa::InstructionSource& source, const SimPointConfig& cfg) {
  SimPointResult result;

  // 1. Collect interval BBVs (bucketed by basic-block start approximation:
  //    the PC following each taken branch, at 64-byte granularity).
  std::vector<std::vector<double>> points;
  for (int iv = 0; iv < cfg.num_intervals; ++iv) {
    std::unordered_map<u64, u64> bbv;
    isa::DynInst di;
    u64 n = 0;
    bool alive = true;
    while (n < cfg.interval_len) {
      if (!source.next(di)) {
        alive = false;
        break;
      }
      bbv[di.pc >> 6] += 1;
      ++n;
    }
    if (n > 0) points.push_back(project(bbv, cfg.projected_dims, cfg.seed));
    if (!alive) break;
  }
  result.intervals_analyzed = static_cast<int>(points.size());
  if (points.empty()) return result;

  const int k = std::min<int>(cfg.clusters, static_cast<int>(points.size()));

  // 2. k-means++ style init: spread seeds deterministically.
  std::vector<std::vector<double>> centroids;
  Pcg32 rng(cfg.seed, 0x51309ULL);
  centroids.push_back(points[rng.next_below(static_cast<u32>(points.size()))]);
  while (static_cast<int>(centroids.size()) < k) {
    std::size_t best_i = 0;
    double best_d = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double dmin = std::numeric_limits<double>::max();
      for (const auto& c : centroids) dmin = std::min(dmin, dist2(points[i], c));
      if (dmin > best_d) {
        best_d = dmin;
        best_i = i;
      }
    }
    centroids.push_back(points[best_i]);
  }

  // 3. Lloyd iterations.
  std::vector<int> assign(points.size(), 0);
  for (int it = 0; it < cfg.kmeans_iters; ++it) {
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double bd = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = dist2(points[i], centroids[static_cast<std::size_t>(c)]);
        if (d < bd) {
          bd = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    for (int c = 0; c < k; ++c) {
      std::vector<double> mean(static_cast<std::size_t>(cfg.projected_dims), 0.0);
      int count = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (assign[i] != c) continue;
        for (std::size_t d = 0; d < mean.size(); ++d) mean[d] += points[i][d];
        ++count;
      }
      if (count > 0) {
        for (double& m : mean) m /= count;
        centroids[static_cast<std::size_t>(c)] = std::move(mean);
      }
    }
    if (!changed) break;
  }

  // 4. Representatives: interval closest to each centroid.
  for (int c = 0; c < k; ++c) {
    int best = -1;
    double bd = std::numeric_limits<double>::max();
    int population = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (assign[i] != c) continue;
      ++population;
      const double d = dist2(points[i], centroids[static_cast<std::size_t>(c)]);
      if (d < bd) {
        bd = d;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      result.phases.push_back(
          Phase{best, static_cast<double>(population) / static_cast<double>(points.size())});
    }
  }
  result.assignment = std::move(assign);
  return result;
}

}  // namespace vasim::workload
