// Runtime checker for the paper's cycle-level scheduling semantics.
//
// SemanticsChecker attaches to a Pipeline through both observation surfaces
// -- the coarse PipelineObserver lifecycle fan-out and the fine-grained
// SchedHooks kernel events -- and maintains its own shadow model of the
// issue window, register-ready state, FU reservation table (FUSR) and LSQ
// gating flags.  Every event is validated against the shadow model, turning
// the paper's prose rules into machine-checked per-cycle invariants:
//
//   delayed-broadcast   VTE pads a predicted-faulty instruction by exactly
//                       one cycle: its tag broadcast arrives at
//                       issue + exec_lat + 1 (Sections 3.2-3.3).
//   completion-time     completion always trails the broadcast by one cycle.
//   slot-freeze         a writeback-stage predicted fault freezes exactly
//                       one global issue slot the following scheduling
//                       cycle, and no cycle issues more than
//                       issue_width - frozen instructions (Section 3.3.5).
//   fusr-occupancy      no instruction is allocated to a busy functional
//                       unit; unpipelined (divide) ops occupy the unit for
//                       their full latency; the VTE freeze adds exactly one
//                       cycle (Section 3.3.3).
//   select-order        each selection pass visits ready candidates oldest
//                       first (seq order == 6-bit ABS timestamp order mod
//                       64); ABS never picks a younger ready instruction
//                       over an older one it skipped (Section 3.5.1).
//   select-candidate    everything the select stage touches is actually
//                       eligible: dispatched on an earlier cycle, operands
//                       ready, not already issued, in the right policy
//                       class for the pass (FFS/CDS preferred class first).
//   cdl-count           a broadcast's reported dependent count equals the
//                       shadow count of waiting consumers of that tag.
//   cds-threshold       criticality feedback fires iff the dependent count
//                       reaches CT (= 8 in the paper, Section 3.5.2).
//   lsq-spacing         no load/store CAM search happens in the blocked
//                       cycle behind a predicted-faulty memory-stage
//                       instruction (Section 3.3.4).
//   stl-order           a load never issues past an older un-issued
//                       matching store (idealized disambiguation).
//   ep-padding          under Error Padding every predicted-faulty
//                       instruction pays exactly one global stall cycle at
//                       its predicted stage's offset, and every EP-flagged
//                       stall cycle is backed by such an event.
//   razor-replay        an unpredicted (or stage-mispredicted) actual fault
//                       always replays before commit; a covered VTE/EP
//                       fault never replays (Section 2.1.2).
//   commit-order        commits are program order, one seq exactly once,
//                       completed instructions only, never wrong-path, at
//                       most commit_width per cycle.
//   dispatch-order      dispatch consumes seq numbers contiguously
//                       (squashes rewind them exactly once).
//
// The checker is read-only: the pipeline never reads anything back, so an
// attached checker cannot change simulation results (the golden fixture
// pins this).  Violations are collected, not thrown, so a run reports every
// broken rule; ExperimentRunner turns them into a test failure.
#ifndef VASIM_CHECK_SEMANTICS_HPP
#define VASIM_CHECK_SEMANTICS_HPP

#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/cpu/check_hooks.hpp"
#include "src/cpu/config.hpp"
#include "src/cpu/hooks.hpp"
#include "src/cpu/observer.hpp"
#include "src/snap/io.hpp"

namespace vasim::cpu {
class Pipeline;
}

namespace vasim::check {

/// One detected rule violation.
struct Violation {
  std::string invariant;  ///< stable key, e.g. "delayed-broadcast"
  std::string detail;
  Cycle cycle = 0;
};

/// Per-invariant firing statistics (for report()).
struct InvariantCount {
  std::string invariant;
  u64 violations = 0;
};

class SemanticsChecker final : public cpu::PipelineObserver, public cpu::SchedHooks {
 public:
  SemanticsChecker(const cpu::CoreConfig& cfg, const cpu::SchemeConfig& scheme);

  /// Attaches to both surfaces (ObserverMux + SchedHooks).  Throws when the
  /// hooks were compiled out (VASIM_CHECK_HOOKS=0): a silently blind
  /// checker would be worse than none.
  void attach(cpu::Pipeline& pipe);

  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] u64 violation_count() const { return total_violations_; }
  /// First kMaxRecorded violations in detection order.
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  /// Number of individual invariant evaluations performed (a sanity signal
  /// that the checker actually saw events).
  [[nodiscard]] u64 checks() const { return checks_; }
  [[nodiscard]] u64 cycles_observed() const { return cycles_observed_; }
  [[nodiscard]] u64 commits_observed() const { return commits_observed_; }
  /// Human-readable summary: per-invariant violation counts plus the first
  /// recorded details.  Empty string when ok().
  [[nodiscard]] std::string report() const;

  /// Serializes the full shadow model (records, register/FU shadows, time
  /// base, program-order trackers, tally counters) so a restored run's
  /// checker continues with a bit-identical checks() count.  Only an ok()
  /// checker may be saved: violations are not serialized.
  void save_state(snap::Writer& w) const;
  /// Restores into a checker constructed with the same configs and already
  /// attached to the restored pipeline.
  void restore_state(snap::Reader& r);

  // ---- PipelineObserver surface (coarse lifecycle cross-checks) ----------
  void on_cycle(Cycle now) override;
  void on_complete(SeqNum seq) override;
  void on_commit(SeqNum seq) override;

  // ---- SchedHooks surface -------------------------------------------------
  void on_cycle_start(Cycle now, int slots_frozen, bool mem_blocked) override;
  void on_global_stall(Cycle now, bool ep_padding) override;
  void on_dispatched(Cycle now, const cpu::InstState& is) override;
  void on_select_pass(Cycle now, int pass) override;
  void on_select_visit(Cycle now, const cpu::InstState& is, cpu::SelectOutcome outcome) override;
  void on_fu_allocated(Cycle now, const cpu::InstState& is, int unit, Cycle next_free) override;
  void on_issued(Cycle now, const cpu::InstState& is, Cycle exec_lat, Cycle lat_delta) override;
  void on_lsq_search(Cycle now, const cpu::InstState& is) override;
  void on_tag_broadcast(Cycle now, const cpu::InstState& is, int deps) override;
  void on_mark_critical(Cycle now, const cpu::InstState& is, int deps, bool critical) override;
  void on_completed(Cycle now, const cpu::InstState& is) override;
  void on_ep_stall(Cycle now, const cpu::InstState& is) override;
  void on_replay(Cycle now, const cpu::InstState& is) override;
  void on_committed(Cycle now, const cpu::InstState& is) override;
  void on_squashed(Cycle now, SeqNum first, SeqNum last) override;

 private:
  static constexpr std::size_t kMaxRecorded = 32;

  /// Shadow record for one in-flight instruction (dispatch..commit/squash).
  struct Rec {
    SeqNum seq = 0;
    bool valid = false;
    u64 age = 0;
    isa::OpClass op = isa::OpClass::kIntAlu;
    u64 line_addr = 0;
    Pc pc = 0;
    int dst = kNoReg;
    int src1 = kNoReg;
    int src2 = kNoReg;
    bool wait1 = false;  ///< src1 outstanding at dispatch, not yet woken
    bool wait2 = false;
    u8 pending = 0;
    Cycle dispatch_cycle = 0;
    bool issued = false;
    bool completed = false;
    bool pred_fault = false;
    bool pred_critical = false;
    timing::OooStage pred_stage = timing::OooStage::kIssueSelect;
    bool actual_fault = false;
    timing::OooStage actual_stage = timing::OooStage::kIssueSelect;
    bool safe_mode = false;
    bool wrong_path = false;
    bool covered = false;         ///< fault predicted well enough to avoid replay
    bool replay_expected = false;
    bool replay_seen = false;
    // Expected event times in *stored* cycles (absolute minus the global
    // stall shift, mirroring the pipeline's event wheel keys so the +1
    // rules stay exact across stalls).
    Cycle bcast_due = 0;
    bool bcast_pending = false;
    Cycle complete_due = 0;
    bool complete_pending = false;
    Cycle ep_due = 0;
    bool ep_pending = false;
  };

  [[nodiscard]] Cycle stored(Cycle now) const { return now - shift_; }
  [[nodiscard]] Rec* rec_of(SeqNum seq);
  [[nodiscard]] const Rec* oldest_rec() const;
  void fail(const char* invariant, Cycle now, std::string detail);
  void check(bool cond, const char* invariant, Cycle now, const char* what, SeqNum seq);
  /// Mirror of Pipeline::stage_offset (EP padding point).
  [[nodiscard]] Cycle ep_offset(timing::OooStage stage, Cycle exec_lat) const;
  /// Shadow wake: returns the CDL count and clears matching wait flags.
  int shadow_wake(int dst_phys);
  /// Shadow mirror of IssueWindow::load_may_issue.
  [[nodiscard]] bool shadow_load_may_issue(const Rec& load) const;

  cpu::CoreConfig cfg_;
  cpu::SchemeConfig scheme_;

  std::vector<Rec> recs_;
  u32 rec_mask_ = 0;
  std::vector<u8> phys_ready_;

  // Time base.
  Cycle shift_ = 0;             ///< mirror of the pipeline's event_shift_
  Cycle last_cycle_start_ = 0;
  bool saw_cycle_start_ = false;
  u64 cycles_observed_ = 0;
  u64 stall_cycles_ = 0;

  // Per-cycle state.
  int frozen_reported_ = 0;
  bool mem_blocked_reported_ = false;
  int expected_frozen_next_ = 0;
  bool expected_mem_blocked_next_ = false;
  int issues_this_cycle_ = 0;
  int commits_this_cycle_ = 0;

  // Selection-pass state.
  int cur_pass_ = 1;
  bool visit_seen_ = false;
  SeqNum last_visit_seq_ = 0;
  u8 last_visit_dist_ = 0;

  // FU shadow (absolute next-free cycles; shifted on global stalls like the
  // real pool).
  std::vector<Cycle> fu_free_;
  bool fu_alloc_pending_ = false;
  SeqNum fu_alloc_seq_ = 0;
  int fu_alloc_unit_ = -1;
  Cycle fu_alloc_next_free_ = 0;

  // Program-order tracking.
  SeqNum next_commit_seq_ = 0;
  SeqNum next_dispatch_seq_ = 0;
  SeqNum max_dispatched_seq_ = 0;
  bool any_dispatched_ = false;

  // EP stall accounting.
  u64 ep_stalls_owed_ = 0;

  // Observer/hook pairing.
  SeqNum last_hook_commit_ = 0;
  bool have_hook_commit_ = false;
  SeqNum last_hook_complete_ = 0;
  bool have_hook_complete_ = false;
  u64 commits_observed_ = 0;

  u64 checks_ = 0;
  u64 total_violations_ = 0;
  std::vector<Violation> violations_;
  std::vector<InvariantCount> by_invariant_;
};

}  // namespace vasim::check

#endif  // VASIM_CHECK_SEMANTICS_HPP
