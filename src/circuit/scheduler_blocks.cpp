#include "src/circuit/scheduler_blocks.hpp"

#include <stdexcept>

namespace vasim::circuit {
namespace {

/// Unsigned a < b, ripple from MSB with an equality chain.
SigId less_than(Netlist& n, const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw std::invalid_argument("less_than: width mismatch");
  SigId lt = n.const0();
  SigId eq_chain = n.const1();
  for (std::size_t idx = a.size(); idx-- > 0;) {
    const SigId a_lt_b_here = n.and2(n.inv(a[idx]), b[idx]);
    lt = n.or2(lt, n.and2(eq_chain, a_lt_b_here));
    eq_chain = n.and2(eq_chain, n.xnor2(a[idx], b[idx]));
  }
  return lt;
}

/// Population count via a full-adder tree; result bus is minimal width.
Bus popcount(Netlist& n, const Bus& bits) {
  if (bits.empty()) return Bus{n.const0()};
  if (bits.size() == 1) return Bus{n.buf(bits[0])};
  if (bits.size() == 2) {
    return Bus{n.xor2(bits[0], bits[1]), n.and2(bits[0], bits[1])};
  }
  if (bits.size() == 3) {
    // Full adder.
    const SigId axb = n.xor2(bits[0], bits[1]);
    const SigId sum = n.xor2(axb, bits[2]);
    const SigId carry = n.or2(n.and2(bits[0], bits[1]), n.and2(axb, bits[2]));
    return Bus{sum, carry};
  }
  const std::size_t half = bits.size() / 2;
  Bus lo = popcount(n, Bus(bits.begin(), bits.begin() + static_cast<long>(half)));
  Bus hi = popcount(n, Bus(bits.begin() + static_cast<long>(half), bits.end()));
  while (lo.size() < hi.size()) lo.push_back(n.const0());
  while (hi.size() < lo.size()) hi.push_back(n.const0());
  SigId cout = kNoSig;
  Bus sum = n.ripple_add(lo, hi, n.const0(), &cout);
  sum.push_back(cout);
  return sum;
}

/// One-hot priority grant (lowest index wins).
Bus priority_grant(Netlist& n, const Bus& req) {
  Bus grant(req.size());
  SigId before = kNoSig;
  for (std::size_t i = 0; i < req.size(); ++i) {
    if (i == 0) {
      grant[i] = n.buf(req[i]);
      before = req[i];
    } else {
      grant[i] = n.and2(req[i], n.inv(before));
      before = n.or2(before, req[i]);
    }
  }
  return grant;
}

}  // namespace

Component build_wakeup_cam(const SchedulerShape& shape) {
  Component c;
  c.name = "WakeupCAM";
  Netlist& n = c.netlist;
  std::vector<Bus> bcast_tag;
  for (int p = 0; p < shape.broadcast_ports; ++p) bcast_tag.push_back(n.add_input_bus(shape.tag_bits));
  const Bus bcast_valid = n.add_input_bus(shape.broadcast_ports);
  std::vector<Bus> op_tag;
  for (int e = 0; e < shape.entries; ++e) {
    for (int s = 0; s < 2; ++s) op_tag.push_back(n.add_input_bus(shape.tag_bits));
  }
  const Bus waiting = n.add_input_bus(shape.entries * 2);
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  for (int e = 0; e < shape.entries; ++e) {
    for (int s = 0; s < 2; ++s) {
      const std::size_t slot = static_cast<std::size_t>(e * 2 + s);
      Bus port_match;
      for (int p = 0; p < shape.broadcast_ports; ++p) {
        const SigId eq = n.equals(op_tag[slot], bcast_tag[static_cast<std::size_t>(p)]);
        port_match.push_back(n.and2(eq, bcast_valid[static_cast<std::size_t>(p)]));
      }
      const SigId match = n.and2(n.reduce_or(port_match), waiting[slot]);
      n.mark_output(match);
      c.outputs.push_back(match);
    }
  }
  // Stored state: two operand tags and two ready bits per entry.
  c.flop_count = shape.entries * (2 * shape.tag_bits + 2);
  return c;
}

Component build_age_select(const SchedulerShape& shape) {
  Component c;
  c.name = "AgeSelect";
  Netlist& n = c.netlist;
  const Bus req_in = n.add_input_bus(shape.entries);
  std::vector<Bus> ts;
  for (int e = 0; e < shape.entries; ++e) ts.push_back(n.add_input_bus(shape.timestamp_bits));
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  Bus live = req_in;
  Bus granted(static_cast<std::size_t>(shape.entries));
  for (int e = 0; e < shape.entries; ++e) granted[static_cast<std::size_t>(e)] = n.const0();

  const Bus all_ones(static_cast<std::size_t>(shape.timestamp_bits), n.const1());
  for (int round = 0; round < shape.grants; ++round) {
    // Effective key: requesters keep their timestamp, idle entries act as
    // max-age-plus (never win).  min-scan then one-hot match + priority.
    Bus min_ts = n.bus_mux(all_ones, ts[0], live[0]);
    for (int e = 1; e < shape.entries; ++e) {
      const Bus cand = n.bus_mux(all_ones, ts[static_cast<std::size_t>(e)],
                                 live[static_cast<std::size_t>(e)]);
      const SigId take = less_than(n, cand, min_ts);
      min_ts = n.bus_mux(min_ts, cand, take);
    }
    Bus cand_grant(static_cast<std::size_t>(shape.entries));
    for (int e = 0; e < shape.entries; ++e) {
      const SigId eq = n.equals(ts[static_cast<std::size_t>(e)], min_ts);
      cand_grant[static_cast<std::size_t>(e)] = n.and2(live[static_cast<std::size_t>(e)], eq);
    }
    const Bus g = priority_grant(n, cand_grant);
    for (int e = 0; e < shape.entries; ++e) {
      const std::size_t i = static_cast<std::size_t>(e);
      granted[i] = n.or2(granted[i], g[i]);
      live[i] = n.and2(live[i], n.inv(g[i]));
    }
  }
  for (const SigId s : granted) n.mark_output(s);
  c.outputs = granted;
  // Stored state: per-entry timestamp.
  c.flop_count = shape.entries * shape.timestamp_bits;
  return c;
}

Component build_countdown(const SchedulerShape& shape) {
  Component c;
  c.name = "Countdown";
  Netlist& n = c.netlist;
  std::vector<Bus> counts;
  for (int p = 0; p < shape.broadcast_ports; ++p) counts.push_back(n.add_input_bus(shape.countdown_bits));
  const Bus active = n.add_input_bus(shape.broadcast_ports);
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  for (int p = 0; p < shape.broadcast_ports; ++p) {
    const Bus& cnt = counts[static_cast<std::size_t>(p)];
    // Decrement: borrow ripple.
    Bus next(cnt.size());
    SigId borrow = n.const1();
    std::vector<SigId> zero_bits;
    for (std::size_t i = 0; i < cnt.size(); ++i) {
      next[i] = n.xor2(cnt[i], borrow);
      borrow = n.and2(n.inv(cnt[i]), borrow);
      zero_bits.push_back(n.inv(cnt[i]));
    }
    const SigId is_zero = n.reduce_and(zero_bits);
    const SigId fire = n.and2(is_zero, active[static_cast<std::size_t>(p)]);
    for (const SigId s : next) {
      n.mark_output(s);
      c.outputs.push_back(s);
    }
    n.mark_output(fire);
    c.outputs.push_back(fire);
  }
  c.flop_count = shape.broadcast_ports * (shape.countdown_bits + 1);
  return c;
}

Component build_payload(const SchedulerShape& shape) {
  Component c;
  c.name = "Payload";
  Netlist& n = c.netlist;
  // Read-out: per issue slot, a one-hot grant selects one entry's payload
  // word.  Payload word = dest tag + opcode(6) + control(4).
  const int word = shape.tag_bits + 10;
  std::vector<Bus> words;
  for (int e = 0; e < shape.entries; ++e) words.push_back(n.add_input_bus(word));
  std::vector<Bus> grants;
  for (int g = 0; g < shape.grants; ++g) grants.push_back(n.add_input_bus(shape.entries));
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  for (int g = 0; g < shape.grants; ++g) {
    for (int b = 0; b < word; ++b) {
      std::vector<SigId> taps;
      for (int e = 0; e < shape.entries; ++e) {
        taps.push_back(n.and2(grants[static_cast<std::size_t>(g)][static_cast<std::size_t>(e)],
                              words[static_cast<std::size_t>(e)][static_cast<std::size_t>(b)]));
      }
      const SigId out = n.reduce_or(taps);
      n.mark_output(out);
      c.outputs.push_back(out);
    }
  }
  // Stored state: one payload word per entry.
  c.flop_count = shape.entries * word;
  return c;
}

Component build_vte_addon(const SchedulerShape& shape) {
  Component c;
  c.name = "VTEAddon";
  Netlist& n = c.netlist;
  const Bus sel_fault = n.add_input_bus(shape.grants);
  std::vector<Bus> sel_fu;  // one-hot FU assignment per issue slot
  for (int g = 0; g < shape.grants; ++g) sel_fu.push_back(n.add_input_bus(shape.num_fus));
  const Bus fusr = n.add_input_bus(shape.num_fus);
  std::vector<Bus> counts;
  for (int p = 0; p < shape.broadcast_ports; ++p) counts.push_back(n.add_input_bus(shape.countdown_bits));
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  // Next-cycle FUSR: a unit goes busy (bit -> 0) when a predicted-faulty
  // instruction was just scheduled to it (Section 3.3.3).
  for (int f = 0; f < shape.num_fus; ++f) {
    Bus hits;
    for (int g = 0; g < shape.grants; ++g) {
      hits.push_back(n.and2(sel_fault[static_cast<std::size_t>(g)],
                            sel_fu[static_cast<std::size_t>(g)][static_cast<std::size_t>(f)]));
    }
    const SigId busy = n.reduce_or(hits);
    const SigId next = n.and2(fusr[static_cast<std::size_t>(f)], n.inv(busy));
    n.mark_output(next);
    c.outputs.push_back(next);
  }
  // Issue-slot freeze flags (Section 3.2.3): registered copy of sel_fault.
  for (int g = 0; g < shape.grants; ++g) {
    const SigId s = n.buf(sel_fault[static_cast<std::size_t>(g)]);
    n.mark_output(s);
    c.outputs.push_back(s);
  }
  // Delayed tag broadcast (Section 3.2.2): countdown + 1 when faulty, via an
  // increment and a per-bit select mux.
  for (int p = 0; p < shape.broadcast_ports; ++p) {
    const Bus& cnt = counts[static_cast<std::size_t>(p)];
    Bus inc(cnt.size());
    SigId carry = n.const1();
    for (std::size_t i = 0; i < cnt.size(); ++i) {
      inc[i] = n.xor2(cnt[i], carry);
      carry = n.and2(cnt[i], carry);
    }
    const SigId faulty = p < shape.grants ? sel_fault[static_cast<std::size_t>(p)] : n.const0();
    const Bus adjusted = n.bus_mux(cnt, inc, faulty);
    for (const SigId s : adjusted) {
      n.mark_output(s);
      c.outputs.push_back(s);
    }
  }
  // Stored state: 4-bit fault field per entry (Section 3.2.1), the FUSR and
  // the per-slot freeze flags.
  c.flop_count = shape.entries * 4 + shape.num_fus + shape.grants;
  return c;
}

Component build_cdl(const SchedulerShape& shape) {
  Component c;
  c.name = "CDL";
  Netlist& n = c.netlist;
  const Bus match = n.add_input_bus(shape.entries);
  const Bus ct = n.add_input_bus(shape.criticality_threshold_bits);
  for (SigId id = 0; id < n.num_inputs(); ++id) c.inputs.push_back(id);

  Bus count = popcount(n, match);
  Bus ct_ext = ct;
  while (ct_ext.size() < count.size()) ct_ext.push_back(n.const0());
  while (count.size() < ct_ext.size()) count.push_back(n.const0());
  const SigId is_critical = n.inv(less_than(n, count, ct_ext));
  for (const SigId s : count) {
    n.mark_output(s);
    c.outputs.push_back(s);
  }
  n.mark_output(is_critical);
  c.outputs.push_back(is_critical);
  // Stored state: per-entry criticality bit (also mirrored into the TEP).
  c.flop_count = shape.entries;
  return c;
}

SchedulerAssembly build_scheduler(SchedulerVariant variant, const SchedulerShape& shape) {
  SchedulerAssembly a;
  a.variant = variant;
  a.blocks.push_back(build_wakeup_cam(shape));
  a.blocks.push_back(build_age_select(shape));
  a.blocks.push_back(build_countdown(shape));
  a.blocks.push_back(build_payload(shape));
  if (variant == SchedulerVariant::kAbsFfs || variant == SchedulerVariant::kCds) {
    a.blocks.push_back(build_vte_addon(shape));
  }
  if (variant == SchedulerVariant::kCds) {
    a.blocks.push_back(build_cdl(shape));
  }
  return a;
}

}  // namespace vasim::circuit
