# Empty dependencies file for vasim_common.
# This may be replaced when dependencies are built.
