#include "src/serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "src/adapt/dvfs.hpp"
#include "src/serve/json.hpp"

namespace vasim::serve {
namespace {

/// Thrown by the request decoders; handle_frame turns it into a reply.
struct ProtocolReject {
  std::string name;
  std::string message;
};

[[noreturn]] void reject(const std::string& name, const std::string& message) {
  throw ProtocolReject{name, message};
}

/// Enforces the closed field set of an object: any member not in `allowed`
/// rejects the frame with the offending name.
void check_fields(const JsonValue& obj, std::initializer_list<std::string_view> allowed,
                  const char* where) {
  for (const auto& [key, value] : obj.object) {
    bool ok = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      reject("unknown_field",
             std::string("unknown field \"") + key + "\" in " + where);
    }
  }
}

u64 require_u64(const JsonValue& obj, std::string_view key, const char* where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    reject("bad_field", std::string("missing \"") + std::string(key) + "\" in " + where);
  }
  try {
    return v->as_u64();
  } catch (const JsonError&) {
    reject("bad_field",
           std::string("\"") + std::string(key) + "\" must be a non-negative integer");
  }
}

std::string hex_u64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, static_cast<std::uint64_t>(v));
  return buf;
}

void append_cell_result(std::string& out, const CellResult& c) {
  out += "{\"index\":" + std::to_string(c.index);
  out += ",\"benchmark\":\"" + json_escape(c.benchmark) + "\"";
  out += ",\"scheme\":\"" + json_escape(c.scheme) + "\"";
  out += ",\"vdd\":" + json_double(c.vdd);
  out += ",\"cancelled\":";
  out += c.cancelled ? "true" : "false";
  if (!c.cancelled) {
    out += ",\"committed\":" + std::to_string(c.committed);
    out += ",\"cycles\":" + std::to_string(c.cycles);
    out += ",\"ipc\":" + json_double(c.ipc);
    out += ",\"fault_rate_pct\":" + json_double(c.fault_rate_pct);
    out += ",\"checksum\":\"" + hex_u64(c.checksum) + "\"";
    out += ",\"warm_hit\":";
    out += c.warm_hit ? "true" : "false";
    out += ",\"wall_ms\":" + json_double(c.wall_ms);
    if (!c.timeline_json.empty()) out += ",\"timeline\":" + c.timeline_json;
  }
  out += "}";
}

std::string handle_submit(Server& server, const JsonValue& req) {
  check_fields(req,
               {"op", "cells", "instr", "warmup", "timeline_interval", "dvfs", "epoch", "tag"},
               "submit request");
  JobSpec spec;
  const JsonValue* cells = req.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    reject("bad_field", "submit needs a \"cells\" array");
  }
  for (const JsonValue& cell : cells->array) {
    if (!cell.is_object()) reject("bad_field", "each cell must be an object");
    check_fields(cell, {"bench", "scheme", "vdd"}, "cell");
    CellSpec cs;
    const JsonValue* bench = cell.find("bench");
    if (bench == nullptr || !bench->is_string()) {
      reject("bad_field", "cell needs a string \"bench\"");
    }
    cs.bench = bench->str;
    if (const JsonValue* scheme = cell.find("scheme"); scheme != nullptr) {
      if (!scheme->is_string()) reject("bad_field", "cell \"scheme\" must be a string");
      cs.scheme = scheme->str;
    }
    if (const JsonValue* vdd = cell.find("vdd"); vdd != nullptr) {
      if (!vdd->is_number()) reject("bad_field", "cell \"vdd\" must be a number");
      cs.vdd = vdd->number;
    }
    spec.cells.push_back(std::move(cs));
  }
  if (req.find("instr") != nullptr) spec.instructions = require_u64(req, "instr", "submit");
  if (req.find("warmup") != nullptr) spec.warmup = require_u64(req, "warmup", "submit");
  if (req.find("timeline_interval") != nullptr) {
    spec.timeline_interval = require_u64(req, "timeline_interval", "submit");
  }
  if (const JsonValue* dvfs = req.find("dvfs"); dvfs != nullptr) {
    if (!dvfs->is_string()) reject("bad_field", "\"dvfs\" must be a policy name string");
    try {
      spec.dvfs = adapt::dvfs_policy_from_string(dvfs->str);
    } catch (const std::invalid_argument& e) {
      reject("bad_field", e.what());
    }
  }
  if (req.find("epoch") != nullptr) {
    const u64 epoch = require_u64(req, "epoch", "submit");
    if (epoch == 0) reject("bad_field", "\"epoch\" must be positive");
    spec.epoch = epoch;
  }
  if (const JsonValue* tag = req.find("tag"); tag != nullptr) {
    if (!tag->is_string()) reject("bad_field", "\"tag\" must be a string");
    spec.tag = tag->str;
  }
  const u64 id = server.submit(spec);
  return "{\"ok\":true,\"job\":" + std::to_string(id) +
         ",\"cells\":" + std::to_string(spec.cells.size()) +
         ",\"queued\":" + std::to_string(server.queue_depth()) + "}";
}

std::string handle_poll(Server& server, const JsonValue& req) {
  check_fields(req, {"op", "job", "since"}, "poll request");
  const u64 id = require_u64(req, "job", "poll");
  const u64 since = req.find("since") != nullptr ? require_u64(req, "since", "poll") : 0;
  const JobStatus st = server.status(id);
  const std::vector<CellResult> res = server.results(id, since);
  std::string out = "{\"ok\":true,\"job\":" + std::to_string(id) + ",\"state\":\"" +
                    to_string(st.state) + "\",\"cells\":" + std::to_string(st.cells) +
                    ",\"done\":" + std::to_string(st.done);
  if (!st.error.empty()) out += ",\"job_error\":\"" + json_escape(st.error) + "\"";
  if (!st.tag.empty()) out += ",\"tag\":\"" + json_escape(st.tag) + "\"";
  out += ",\"results\":[";
  for (std::size_t i = 0; i < res.size(); ++i) {
    if (i != 0) out += ",";
    append_cell_result(out, res[i]);
  }
  out += "]}";
  return out;
}

std::string handle_cancel(Server& server, const JsonValue& req) {
  check_fields(req, {"op", "job"}, "cancel request");
  const u64 id = require_u64(req, "job", "cancel");
  const JobState state = server.cancel(id);
  return "{\"ok\":true,\"job\":" + std::to_string(id) + ",\"state\":\"" +
         to_string(state) + "\"}";
}

std::string handle_stats(Server& server, const JsonValue& req) {
  check_fields(req, {"op"}, "stats request");
  const StatSet s = server.stats();
  const SnapshotCache::Stats cs = server.cache_stats();
  std::string out = "{\"ok\":true,\"stats\":{";
  bool first = true;
  for (const auto& [name, count] : s.counters()) {
    if (!first) out += ",";
    out += "\"" + json_escape(name) + "\":" + std::to_string(count);
    first = false;
  }
  for (const auto& [name, value] : s.scalars()) {
    if (!first) out += ",";
    out += "\"" + json_escape(name) + "\":" + json_double(value);
    first = false;
  }
  const u64 lookups = cs.hits + cs.misses;
  out += "},\"cache\":{\"hits\":" + std::to_string(cs.hits) +
         ",\"misses\":" + std::to_string(cs.misses) +
         ",\"insertions\":" + std::to_string(cs.insertions) +
         ",\"evictions\":" + std::to_string(cs.evictions) +
         ",\"size\":" + std::to_string(cs.size) +
         ",\"capacity\":" + std::to_string(cs.capacity) + ",\"hit_rate\":" +
         json_double(lookups == 0 ? 0.0
                                  : static_cast<double>(cs.hits) / static_cast<double>(lookups)) +
         "}";
  out += ",\"queue\":{\"depth\":" + std::to_string(server.queue_depth()) +
         ",\"limit\":" + std::to_string(server.config().queue_limit) + "}";
  out += ",\"workers\":" + std::to_string(server.config().workers) + "}";
  return out;
}

}  // namespace

std::string error_reply(const std::string& name, const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + json_escape(name) + "\",\"message\":\"" +
         json_escape(message) + "\"}";
}

std::string handle_frame(Server& server, std::string_view line, bool* shutdown_requested) {
  try {
    JsonValue req;
    try {
      req = parse_json(line);
    } catch (const JsonError& e) {
      return error_reply("parse_error", e.what());
    }
    if (!req.is_object()) return error_reply("not_object", "request frame must be a JSON object");
    const JsonValue* op = req.find("op");
    if (op == nullptr || !op->is_string()) {
      return error_reply("bad_field", "request needs a string \"op\"");
    }
    if (op->str == "submit") return handle_submit(server, req);
    if (op->str == "poll") return handle_poll(server, req);
    if (op->str == "cancel") return handle_cancel(server, req);
    if (op->str == "stats") return handle_stats(server, req);
    if (op->str == "shutdown") {
      check_fields(req, {"op"}, "shutdown request");
      if (shutdown_requested != nullptr) *shutdown_requested = true;
      return "{\"ok\":true,\"shutdown\":true}";
    }
    return error_reply("unknown_op", "unknown op \"" + op->str + "\"");
  } catch (const ProtocolReject& r) {
    return error_reply(r.name, r.message);
  } catch (const QueueFullError& e) {
    return "{\"ok\":false,\"error\":\"queue_full\",\"message\":\"" + json_escape(e.what()) +
           "\",\"retry_after_ms\":" + std::to_string(e.retry_after_ms()) + "}";
  } catch (const ServeError& e) {
    return error_reply(e.name(), e.what());
  } catch (const std::exception& e) {
    // A simulator-level failure surfaced synchronously (submit-time capture
    // does not exist; keep the catch-all so one bad frame never kills the
    // connection thread).
    return error_reply("internal_error", e.what());
  }
}

}  // namespace vasim::serve
