#include "src/cpu/config.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "src/isa/program.hpp"

namespace vasim::cpu {

const char* to_string(SchedKernel k) {
  switch (k) {
    case SchedKernel::kIssueWindow: return "issue-window";
    case SchedKernel::kDelayQueue: return "delay-queue";
  }
  return "?";
}

bool sched_kernel_from_string(const char* name, SchedKernel& out) {
  if (std::strcmp(name, "issue-window") == 0) {
    out = SchedKernel::kIssueWindow;
    return true;
  }
  if (std::strcmp(name, "delay-queue") == 0) {
    out = SchedKernel::kDelayQueue;
    return true;
  }
  return false;
}

namespace {
[[nodiscard]] bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

void validate_core_config(const CoreConfig& cfg) {
  // Slot addressing is seq & (next_pow2(rob)-1) over u32 sequence bits; keep
  // the capacity comfortably inside that and the arena-size arithmetic.
  constexpr int kMaxRob = 64 * 1024;
  if (cfg.rob_entries < 1 || cfg.rob_entries > kMaxRob) {
    throw std::invalid_argument("CoreConfig: rob_entries out of range [1, " +
                                std::to_string(kMaxRob) + "]");
  }
  if (!is_pow2(cfg.iq_entries)) {
    throw std::invalid_argument(
        "CoreConfig: iq_entries must be a power of two (got " +
        std::to_string(cfg.iq_entries) + ")");
  }
  // iq_entries > rob_entries is allowed: the queue count is a dispatch gate,
  // the window itself is sized by rob_entries, so an oversized gate simply
  // never binds (small-ROB studies shrink rob below the default iq).
  if (cfg.lq_entries < 1 || cfg.sq_entries < 1) {
    throw std::invalid_argument("CoreConfig: lq_entries/sq_entries must be positive");
  }
  if (cfg.phys_regs < isa::kNumArchRegs + cfg.dispatch_width) {
    // Renaming needs the full architectural file plus one new mapping per
    // dispatch slot, or dispatch wedges on an empty free list.
    throw std::invalid_argument(
        "CoreConfig: phys_regs (" + std::to_string(cfg.phys_regs) +
        ") must be at least arch regs + dispatch_width (" +
        std::to_string(isa::kNumArchRegs + cfg.dispatch_width) + ")");
  }
}

}  // namespace vasim::cpu
