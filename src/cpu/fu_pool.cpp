#include "src/cpu/fu_pool.hpp"

namespace vasim::cpu {

FuKind fu_kind_for(isa::OpClass op) {
  switch (op) {
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv:
      return FuKind::kComplexAlu;
    case isa::OpClass::kLoad:
      return FuKind::kLoadPort;
    case isa::OpClass::kStore:
      return FuKind::kStorePort;
    case isa::OpClass::kBranch:
      return FuKind::kBranch;
    default:
      return FuKind::kSimpleAlu;
  }
}

FuPool::FuPool(const CoreConfig& cfg, obs::Registry* reg) {
  for (int i = 0; i < cfg.simple_alus; ++i) units_.push_back({FuKind::kSimpleAlu, true, 0});
  for (int i = 0; i < cfg.complex_alus; ++i) units_.push_back({FuKind::kComplexAlu, true, 0});
  for (int i = 0; i < cfg.branch_units; ++i) units_.push_back({FuKind::kBranch, true, 0});
  for (int i = 0; i < cfg.load_ports; ++i) units_.push_back({FuKind::kLoadPort, true, 0});
  for (int i = 0; i < cfg.store_ports; ++i) units_.push_back({FuKind::kStorePort, true, 0});
  if (reg != nullptr) {
    counting_ = true;
    c_alu_ = reg->counter("ev.fu.alu");
    c_mul_ = reg->counter("ev.fu.mul");
    c_div_ = reg->counter("ev.fu.div");
    c_branch_ = reg->counter("ev.fu.branch");
    c_mem_ = reg->counter("ev.fu.mem");
  }
}

void FuPool::count_allocation(FuKind kind, isa::OpClass op) {
  switch (kind) {
    case FuKind::kSimpleAlu: c_alu_.inc(); break;
    case FuKind::kComplexAlu:
      (op == isa::OpClass::kIntDiv ? c_div_ : c_mul_).inc();
      break;
    case FuKind::kBranch: c_branch_.inc(); break;
    case FuKind::kLoadPort:
    case FuKind::kStorePort: c_mem_.inc(); break;
  }
}

bool FuPool::occupies_fully(isa::OpClass op, const Unit& u) {
  // Divide is the unpipelined multi-cycle case of Section 3.3.3.
  return op == isa::OpClass::kIntDiv || !u.pipelined;
}

int FuPool::allocate(isa::OpClass op, Cycle cycle, Cycle latency, bool occupy_extra) {
  const FuKind want = fu_kind_for(op);
  for (std::size_t i = 0; i < units_.size(); ++i) {
    Unit& u = units_[i];
    if (u.kind != want || u.next_free > cycle) continue;
    Cycle busy_until = occupies_fully(op, u) ? cycle + latency : cycle + 1;
    if (occupy_extra) busy_until += 1;
    u.next_free = busy_until;
    if (counting_) count_allocation(u.kind, op);
    return static_cast<int>(i);
  }
  return -1;
}

bool FuPool::can_accept(isa::OpClass op, Cycle cycle) const {
  const FuKind want = fu_kind_for(op);
  for (const Unit& u : units_) {
    if (u.kind == want && u.next_free <= cycle) return true;
  }
  return false;
}

void FuPool::shift_time(Cycle delta) {
  for (Unit& u : units_) u.next_free += delta;
}

}  // namespace vasim::cpu
