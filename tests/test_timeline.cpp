// Timeline telemetry and self-profiler behaviour.
//
// The load-bearing contract is exact reconciliation: windows partition the
// sampled run, so for every tracked counter the per-window deltas sum to the
// end-of-run aggregate -- counter for counter, across the scheme x benchmark
// x supply grid, through warm starts and the lockstep batch engine.  The
// other half of the contract is invisibility: with no timeline or profiler
// attached, results are bitwise unchanged.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/trace.hpp"
#include "src/snap/io.hpp"
#include "src/timing/voltage.hpp"
#include "src/workload/profiles.hpp"
#include "tests/json_util.hpp"

namespace vasim {
namespace {

using testutil::JsonParser;
using testutil::count_substr;

core::RunnerConfig timeline_config(u64 interval) {
  core::RunnerConfig rc;
  rc.instructions = 3'000;
  rc.warmup = 1'000;
  rc.timeline_interval = interval;
  return rc;
}

std::vector<core::SweepJob> grid_jobs() {
  std::vector<core::SweepJob> jobs;
  for (const char* bench : {"bzip2", "sjeng"}) {
    const auto prof = workload::spec2006_profile(bench);
    for (const double vdd : {timing::SupplyPoints::kLowFault, timing::SupplyPoints::kHighFault}) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      for (const auto& scheme : core::comparative_schemes()) {
        jobs.push_back({prof, scheme, vdd, std::nullopt});
      }
    }
  }
  return jobs;
}

/// The reconciliation oracle: measured-window sums equal the measured
/// aggregates exactly (integer equality, not approximate), for the cycle and
/// commit columns, every tracked counter, and the derived series' numerators
/// and denominators.
void expect_reconciles(const core::RunResult& r, const std::string& cell) {
  ASSERT_NE(r.timeline, nullptr) << cell;
  const obs::Timeline& tl = *r.timeline;
  ASSERT_GT(tl.windows(), tl.measurement_start()) << cell;

  u64 cycles = 0;
  u64 committed = 0;
  std::vector<u64> sums(tl.num_counters(), 0);
  for (std::size_t w = tl.measurement_start(); w < tl.windows(); ++w) {
    cycles += tl.cycle_delta(w);
    committed += tl.committed_delta(w);
    for (std::size_t c = 0; c < tl.num_counters(); ++c) sums[c] += tl.delta(w, c);
  }
  EXPECT_EQ(committed, r.committed) << cell;
  EXPECT_EQ(cycles, r.cycles) << cell;
  for (std::size_t c = 0; c < tl.num_counters(); ++c) {
    EXPECT_EQ(sums[c], r.stats.count(tl.counter_name(c)))
        << cell << ": counter " << tl.counter_name(c) << " leaked across windows";
  }

  // Derived series 1 -- IPC: the windowed cycle/commit sums reproduce the
  // run's IPC bit-for-bit (same division of the same integers).
  EXPECT_EQ(static_cast<double>(committed) / static_cast<double>(cycles), r.ipc) << cell;
  // Derived series 2 -- violation rate: fault.actual window sums equal the
  // measured aggregate (checked above); the rate follows from the same
  // integers.
  // Derived series 3 -- predictor accuracy: handled/actual from window sums
  // equals the RunResult's.
  u64 actual = 0;
  u64 handled = 0;
  for (std::size_t w = tl.measurement_start(); w < tl.windows(); ++w) {
    actual += tl.delta_of(w, "fault.actual");
    handled += tl.delta_of(w, "fault.handled");
  }
  if (actual > 0) {
    EXPECT_EQ(static_cast<double>(handled) / static_cast<double>(actual), r.predictor_accuracy)
        << cell;
  }
  // Derived series 4 -- the 9-cause CPI stack: per-cause window sums equal
  // the run's slot accounting exactly.
  obs::CpiStack summed;
  for (std::size_t w = tl.measurement_start(); w < tl.windows(); ++w) {
    const obs::CpiStack ws = tl.cpi_window(w);
    for (int c = 0; c < obs::kNumCpiCauses; ++c) {
      summed.slots[static_cast<std::size_t>(c)] += ws.slots[static_cast<std::size_t>(c)];
    }
  }
  EXPECT_EQ(summed.slots, r.cpi.slots) << cell;

  // Geometry: cycle boundaries strictly increase, commit boundaries follow
  // the sampling grid (every window but the boundary cuts and the last spans
  // at least one commit).
  for (std::size_t w = 1; w < tl.windows(); ++w) {
    EXPECT_LT(tl.cycle_end(w - 1), tl.cycle_end(w)) << cell;
    EXPECT_LE(tl.committed_end(w - 1), tl.committed_end(w)) << cell;
  }
}

// ---- the tentpole invariant ------------------------------------------------

TEST(Timeline, WindowSumsReconcileExactlyAcrossSweepGrid) {
  const core::SweepRunner runner(timeline_config(250), 2);
  const std::vector<core::RunResult> results = runner.run_results(grid_jobs());
  for (const core::RunResult& r : results) {
    expect_reconciles(r, r.benchmark + "/" + r.scheme + "@" + std::to_string(r.vdd));
  }
}

TEST(Timeline, DisabledSamplingLeavesResultsBitwiseUnchanged) {
  core::RunnerConfig off = timeline_config(0);
  const core::SweepRunner plain(off, 2);
  const core::SweepRunner sampled(timeline_config(300), 2);
  const std::vector<core::SweepJob> jobs = grid_jobs();
  const u64 ck_off = core::sweep_checksum(plain.run_results(jobs));
  const u64 ck_on = core::sweep_checksum(sampled.run_results(jobs));
  EXPECT_EQ(ck_off, ck_on) << "sampling must observe, never perturb";
}

TEST(Timeline, WarmStartTimelineBeginsAtForkAndReconciles) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  core::RunnerConfig rc = timeline_config(250);
  const core::ExperimentRunner capturer(rc);
  const core::RunSnapshot snap = capturer.capture(prof, scheme, 0.97, rc.warmup);

  const core::RunResult warm = capturer.run_from(snap);
  expect_reconciles(warm, "warm bzip2/abs");
  // Warm-started timelines are measured from the fork: no warmup windows.
  EXPECT_EQ(warm.timeline->measurement_start(), 0u);
  EXPECT_GT(warm.timeline->cycle_delta(0), 0u);

  // The sampler changes nothing about the simulation itself.
  core::RunnerConfig rc_off = rc;
  rc_off.timeline_interval = 0;
  const core::RunResult plain = core::ExperimentRunner(rc_off).run_from(snap);
  EXPECT_EQ(warm.committed, plain.committed);
  EXPECT_EQ(warm.cycles, plain.cycles);
  EXPECT_EQ(warm.stats.counters(), plain.stats.counters());
}

TEST(Timeline, ReuseWarmupSweepKeepsChecksumAndReconciles) {
  const std::vector<core::SweepJob> jobs = grid_jobs();
  core::SweepRunner plain(timeline_config(0), 2);
  plain.set_reuse_warmup(true);
  core::SweepRunner sampled(timeline_config(400), 2);
  sampled.set_reuse_warmup(true);
  const core::SweepReport a = plain.run(jobs);
  const core::SweepReport b = sampled.run(jobs);
  EXPECT_EQ(core::sweep_checksum(a), core::sweep_checksum(b));
  for (const core::SweepOutcome& j : b.jobs) {
    expect_reconciles(j.result, j.result.benchmark + "/" + j.result.scheme + " (reuse-warmup)");
  }
}

TEST(Timeline, ComposesWithLockstepBatchEngine) {
  const std::vector<core::SweepJob> jobs = grid_jobs();
  core::SweepRunner batched(timeline_config(350), 1);
  batched.set_batch(4);
  const std::vector<core::RunResult> rb = batched.run_results(jobs);
  const core::SweepRunner single(timeline_config(0), 1);
  EXPECT_EQ(core::sweep_checksum(rb), core::sweep_checksum(single.run_results(jobs)));
  for (const core::RunResult& r : rb) {
    expect_reconciles(r, r.benchmark + "/" + r.scheme + " (batch=4)");
  }
}

// ---- export formats --------------------------------------------------------

core::RunResult one_sampled_run() {
  const core::SweepRunner runner(timeline_config(250), 1);
  return runner
      .run_results({{workload::spec2006_profile("sjeng"), core::scheme_by_name("abs"), 0.97,
                     std::nullopt}})
      .front();
}

TEST(Timeline, BinaryBlobRoundTripIsLossless) {
  const core::RunResult r = one_sampled_run();
  snap::Writer w1;
  r.timeline->save(w1);
  snap::Reader rd(w1.data());
  const obs::Timeline back = obs::Timeline::load(rd);
  rd.expect_done("timeline blob");

  ASSERT_EQ(back.windows(), r.timeline->windows());
  EXPECT_EQ(back.interval(), r.timeline->interval());
  EXPECT_EQ(back.measurement_start(), r.timeline->measurement_start());
  ASSERT_EQ(back.num_counters(), r.timeline->num_counters());
  for (std::size_t w = 0; w < back.windows(); ++w) {
    EXPECT_EQ(back.cycle_end(w), r.timeline->cycle_end(w));
    EXPECT_EQ(back.committed_end(w), r.timeline->committed_end(w));
    EXPECT_EQ(back.phase_change(w), r.timeline->phase_change(w));
    for (std::size_t c = 0; c < back.num_counters(); ++c) {
      EXPECT_EQ(back.delta(w, c), r.timeline->delta(w, c));
    }
  }
  // Byte-level fixpoint: re-serializing the loaded timeline reproduces the
  // blob exactly.
  snap::Writer w2;
  back.save(w2);
  EXPECT_EQ(w1.data(), w2.data());
}

TEST(Timeline, JsonAndCsvExportsAreWellFormed) {
  const core::RunResult r = one_sampled_run();
  std::ostringstream js;
  r.timeline->write_json(js, /*include_counters=*/true);
  const std::string json = js.str();
  EXPECT_TRUE(JsonParser(json).parse()) << "timeline JSON must be valid";
  EXPECT_NE(json.find("\"kind\": \"vasim_timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"violation_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  std::ostringstream js_slim;
  r.timeline->write_json(js_slim, /*include_counters=*/false);
  EXPECT_TRUE(JsonParser(js_slim.str()).parse());
  EXPECT_EQ(js_slim.str().find("\"counters\""), std::string::npos);

  std::ostringstream cs;
  r.timeline->write_csv(cs);
  const std::string csv = cs.str();
  EXPECT_EQ(count_substr(csv, "\n"), r.timeline->windows() + 1) << "header + one row per window";
  EXPECT_EQ(csv.rfind("window,cycle_end,committed_end,phase_change,ipc,", 0), 0u);
}

TEST(Timeline, SweepChromeTraceGainsCounterTracks) {
  core::SweepRunner runner(timeline_config(250), 1);
  const core::SweepReport report = runner.run(
      {{workload::spec2006_profile("bzip2"), core::scheme_by_name("razor"), 0.97, std::nullopt}});
  std::ostringstream os;
  core::write_chrome_trace(os, report);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).parse()) << "trace with counter tracks must stay valid JSON";
  EXPECT_GT(count_substr(json, "\"ph\": \"C\""), 0u) << "counter samples missing";
  EXPECT_EQ(count_substr(json, "\"ph\": \"X\""), 1u) << "existing span untouched";
  EXPECT_NE(json.find("\"name\": \"vasim timelines\""), std::string::npos);
}

// ---- sampler mechanics -----------------------------------------------------

TEST(Timeline, PhaseChangeMarkerFlagsIpcShifts) {
  // Registry-less timeline (IPC only): two steady windows then a 5x IPC drop.
  obs::Timeline::Config cfg;
  cfg.interval = 100;
  cfg.phase_delta = 0.25;
  obs::Timeline tl(cfg, nullptr);
  tl.sample(100, 100);   // ipc 1.0
  tl.sample(200, 200);   // ipc 1.0, steady
  tl.sample(300, 220);   // ipc 0.2, phase boundary
  tl.finalize(300, 220);
  ASSERT_EQ(tl.windows(), 3u);
  EXPECT_FALSE(tl.phase_change(0)) << "first window has no predecessor";
  EXPECT_FALSE(tl.phase_change(1));
  EXPECT_TRUE(tl.phase_change(2));
  EXPECT_DOUBLE_EQ(tl.ipc(2), 0.2);
}

TEST(Timeline, RebaselineIsOnlyLegalOnEmptyTimeline) {
  obs::Timeline::Config cfg;
  cfg.interval = 10;
  obs::Timeline tl(cfg, nullptr);
  tl.rebaseline(500, 400);  // legal: nothing recorded yet
  tl.sample(600, 450);
  EXPECT_EQ(tl.cycle_delta(0), 100u) << "accounting starts at the rebaseline point";
  EXPECT_EQ(tl.committed_delta(0), 50u);
  EXPECT_THROW(tl.rebaseline(700, 500), std::logic_error);
}

// ---- self-profiler ---------------------------------------------------------

TEST(Profiler, AttributesTimeWithoutPerturbingResults) {
  const auto prof = workload::spec2006_profile("bzip2");
  const auto scheme = core::scheme_by_name("abs");
  core::RunnerConfig rc = timeline_config(0);
  obs::ProfilerHub hub;
  rc.profiler_hub = &hub;
  const core::RunResult profiled = core::ExperimentRunner(rc).run(prof, *scheme, 0.97);

  core::RunnerConfig rc_off = rc;
  rc_off.profiler_hub = nullptr;
  const core::RunResult plain = core::ExperimentRunner(rc_off).run(prof, *scheme, 0.97);
  EXPECT_EQ(profiled.cycles, plain.cycles);
  EXPECT_EQ(profiled.committed, plain.committed);
  EXPECT_EQ(profiled.stats.counters(), plain.stats.counters());

  const obs::Profiler::Snapshot total = hub.total();
  EXPECT_GT(total.total_ns(), 0u);
  for (int p = 0; p < obs::kNumProfPhases; ++p) {
    EXPECT_GT(total.calls[static_cast<std::size_t>(p)], 0u)
        << "phase " << obs::to_string(static_cast<obs::ProfPhase>(p)) << " never timed";
  }
  // Sub-phases nest inside their parents, so parent time bounds them (the
  // clock is monotonic within one thread).
  EXPECT_GE(total.ns[static_cast<std::size_t>(obs::ProfPhase::kSelect)],
            total.ns[static_cast<std::size_t>(obs::ProfPhase::kFaultCheck)]);
  EXPECT_GE(total.ns[static_cast<std::size_t>(obs::ProfPhase::kExecute)],
            total.ns[static_cast<std::size_t>(obs::ProfPhase::kEventWheel)]);
}

TEST(Profiler, HubKeysMergesByThreadAndSumsTotals) {
  obs::ProfilerHub hub;
  const auto work = [&hub](u64 ns) {
    obs::Profiler p;
    p.add(obs::ProfPhase::kFetch, ns);
    p.add(obs::ProfPhase::kCommit, ns * 2);
    hub.merge(p.snapshot());
  };
  std::thread a(work, 100);
  std::thread b(work, 10);
  a.join();
  b.join();
  work(1);  // this thread: a third worker

  const std::vector<obs::ProfilerHub::WorkerReport> workers = hub.per_worker();
  ASSERT_EQ(workers.size(), 3u);
  const obs::Profiler::Snapshot total = hub.total();
  EXPECT_EQ(total.ns[static_cast<std::size_t>(obs::ProfPhase::kFetch)], 111u);
  EXPECT_EQ(total.ns[static_cast<std::size_t>(obs::ProfPhase::kCommit)], 222u);
  EXPECT_EQ(total.calls[static_cast<std::size_t>(obs::ProfPhase::kFetch)], 3u);
  u64 sum = 0;
  for (const obs::ProfilerHub::WorkerReport& w : workers) {
    sum += w.snap.ns[static_cast<std::size_t>(obs::ProfPhase::kFetch)];
  }
  EXPECT_EQ(sum, 111u);
}

TEST(Profiler, SweepMergesEveryWorkerIntoHub) {
  core::RunnerConfig rc = timeline_config(0);
  obs::ProfilerHub hub;
  rc.profiler_hub = &hub;
  core::SweepRunner runner(rc, 2);
  const core::SweepReport report = runner.run(grid_jobs());
  EXPECT_EQ(report.jobs.size(), grid_jobs().size());
  EXPECT_GT(hub.total().total_ns(), 0u);
  EXPECT_GE(hub.per_worker().size(), 1u);
  EXPECT_LE(hub.per_worker().size(), 2u);
}

}  // namespace
}  // namespace vasim
