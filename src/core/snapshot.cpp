#include "src/core/snapshot.hpp"

namespace vasim::core {
namespace {

u64 fnv1a(const std::string& bytes) {
  u64 h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

u8 predictor_code(PredictorKind k) { return static_cast<u8>(k); }

PredictorKind predictor_from_code(u8 v) {
  if (v > static_cast<u8>(PredictorKind::kTvp)) {
    throw snap::SnapshotError("unknown predictor kind " + std::to_string(v));
  }
  return static_cast<PredictorKind>(v);
}

void put_cache_config(snap::Writer& w, const cpu::CacheConfig& c) {
  w.put_u64(c.size_bytes);
  w.put_i32(c.ways);
  w.put_i32(c.line_bytes);
  w.put_u64(c.latency);
}

cpu::CacheConfig get_cache_config(snap::Reader& r) {
  cpu::CacheConfig c;
  c.size_bytes = r.get_u64();
  c.ways = r.get_i32();
  c.line_bytes = r.get_i32();
  c.latency = r.get_u64();
  return c;
}

}  // namespace

void put_profile(snap::Writer& w, const workload::BenchmarkProfile& p) {
  w.put_str(p.name);
  w.put_f64(p.f_load);
  w.put_f64(p.f_store);
  w.put_f64(p.f_branch);
  w.put_f64(p.f_mul);
  w.put_f64(p.f_div);
  w.put_f64(p.branch_taken_bias);
  w.put_f64(p.branch_random_frac);
  w.put_f64(p.serial_frac);
  w.put_f64(p.dep_geo_p);
  w.put_f64(p.hub_frac);
  w.put_f64(p.slack_frac);
  w.put_u64(p.ws_hot_bytes);
  w.put_u64(p.ws_warm_bytes);
  w.put_u64(p.ws_cold_bytes);
  w.put_f64(p.warm_frac);
  w.put_f64(p.cold_frac);
  w.put_f64(p.cold_random_frac);
  w.put_i32(p.num_blocks);
  w.put_i32(p.block_len_min);
  w.put_i32(p.block_len_max);
  w.put_f64(p.fr_high_pct);
  w.put_f64(p.fr_low_pct);
  w.put_f64(p.fr_calib_high);
  w.put_f64(p.fr_calib_low);
  w.put_f64(p.paper_ipc);
  w.put_u64(p.seed);
}

workload::BenchmarkProfile get_profile(snap::Reader& r) {
  workload::BenchmarkProfile p;
  p.name = r.get_str();
  p.f_load = r.get_f64();
  p.f_store = r.get_f64();
  p.f_branch = r.get_f64();
  p.f_mul = r.get_f64();
  p.f_div = r.get_f64();
  p.branch_taken_bias = r.get_f64();
  p.branch_random_frac = r.get_f64();
  p.serial_frac = r.get_f64();
  p.dep_geo_p = r.get_f64();
  p.hub_frac = r.get_f64();
  p.slack_frac = r.get_f64();
  p.ws_hot_bytes = r.get_u64();
  p.ws_warm_bytes = r.get_u64();
  p.ws_cold_bytes = r.get_u64();
  p.warm_frac = r.get_f64();
  p.cold_frac = r.get_f64();
  p.cold_random_frac = r.get_f64();
  p.num_blocks = r.get_i32();
  p.block_len_min = r.get_i32();
  p.block_len_max = r.get_i32();
  p.fr_high_pct = r.get_f64();
  p.fr_low_pct = r.get_f64();
  p.fr_calib_high = r.get_f64();
  p.fr_calib_low = r.get_f64();
  p.paper_ipc = r.get_f64();
  p.seed = r.get_u64();
  return p;
}

void put_core_config(snap::Writer& w, const cpu::CoreConfig& c) {
  w.put_i32(c.fetch_width);
  w.put_i32(c.dispatch_width);
  w.put_i32(c.issue_width);
  w.put_i32(c.commit_width);
  w.put_i32(c.rob_entries);
  w.put_i32(c.iq_entries);
  w.put_i32(c.lq_entries);
  w.put_i32(c.sq_entries);
  w.put_i32(c.phys_regs);
  w.put_i32(c.frontend_depth);
  w.put_i32(c.replay_recovery);
  w.put_i32(c.simple_alus);
  w.put_i32(c.complex_alus);
  w.put_i32(c.branch_units);
  w.put_i32(c.load_ports);
  w.put_i32(c.store_ports);
  w.put_u64(c.mul_latency);
  w.put_u64(c.div_latency);
  w.put_i32(c.gshare_bits);
  w.put_i32(c.btb_entries);
  put_cache_config(w, c.l1i);
  put_cache_config(w, c.l1d);
  put_cache_config(w, c.l2);
  w.put_u64(c.memory_latency);
  w.put_bool(c.l2_next_line_prefetch);
  w.put_bool(c.model_wrong_path);
  w.put_u64(c.watchdog_cycles);
  w.put_u8(static_cast<u8>(c.sched_kernel));
}

cpu::CoreConfig get_core_config(snap::Reader& r) {
  cpu::CoreConfig c;
  c.fetch_width = r.get_i32();
  c.dispatch_width = r.get_i32();
  c.issue_width = r.get_i32();
  c.commit_width = r.get_i32();
  c.rob_entries = r.get_i32();
  c.iq_entries = r.get_i32();
  c.lq_entries = r.get_i32();
  c.sq_entries = r.get_i32();
  c.phys_regs = r.get_i32();
  c.frontend_depth = r.get_i32();
  c.replay_recovery = r.get_i32();
  c.simple_alus = r.get_i32();
  c.complex_alus = r.get_i32();
  c.branch_units = r.get_i32();
  c.load_ports = r.get_i32();
  c.store_ports = r.get_i32();
  c.mul_latency = r.get_u64();
  c.div_latency = r.get_u64();
  c.gshare_bits = r.get_i32();
  c.btb_entries = r.get_i32();
  c.l1i = get_cache_config(r);
  c.l1d = get_cache_config(r);
  c.l2 = get_cache_config(r);
  c.memory_latency = r.get_u64();
  c.l2_next_line_prefetch = r.get_bool();
  c.model_wrong_path = r.get_bool();
  c.watchdog_cycles = r.get_u64();
  const u8 kernel = r.get_u8();
  if (kernel > static_cast<u8>(cpu::SchedKernel::kDelayQueue)) {
    throw snap::SnapshotError("unknown scheduler kernel in snapshot");
  }
  c.sched_kernel = static_cast<cpu::SchedKernel>(kernel);
  return c;
}

void put_scheme(snap::Writer& w, const cpu::SchemeConfig& s) {
  w.put_str(s.name);
  w.put_bool(s.use_predictor);
  w.put_bool(s.vte);
  w.put_bool(s.error_padding);
  w.put_u8(static_cast<u8>(s.policy));
  w.put_u8(static_cast<u8>(s.recovery));
  w.put_u64(s.micro_stall_cycles);
  w.put_i32(s.criticality_threshold);
  w.put_f64(s.inorder_fault_scale);
}

cpu::SchemeConfig get_scheme(snap::Reader& r) {
  cpu::SchemeConfig s;
  s.name = r.get_str();
  s.use_predictor = r.get_bool();
  s.vte = r.get_bool();
  s.error_padding = r.get_bool();
  const u8 policy = r.get_u8();
  if (policy > static_cast<u8>(cpu::SelectPolicy::kCriticalityDriven)) {
    throw snap::SnapshotError("unknown select policy " + std::to_string(policy));
  }
  s.policy = static_cast<cpu::SelectPolicy>(policy);
  const u8 recovery = r.get_u8();
  if (recovery > static_cast<u8>(cpu::RecoveryModel::kMicroStall)) {
    throw snap::SnapshotError("unknown recovery model " + std::to_string(recovery));
  }
  s.recovery = static_cast<cpu::RecoveryModel>(recovery);
  s.micro_stall_cycles = r.get_u64();
  s.criticality_threshold = r.get_i32();
  s.inorder_fault_scale = r.get_f64();
  return s;
}

void put_tep_config(snap::Writer& w, const TepConfig& t) {
  w.put_i32(t.entries);
  w.put_i32(t.history_bits);
  w.put_u8(t.counter_max);
  w.put_u8(t.counter_on_alloc);
  w.put_bool(t.sensor_gating);
}

TepConfig get_tep_config(snap::Reader& r) {
  TepConfig t;
  t.entries = r.get_i32();
  t.history_bits = r.get_i32();
  t.counter_max = r.get_u8();
  t.counter_on_alloc = r.get_u8();
  t.sensor_gating = r.get_bool();
  return t;
}

void put_run_meta(snap::Writer& w, const RunMeta& m) {
  w.put_bool(m.fault_free);
  put_profile(w, m.profile);
  if (!m.fault_free) put_scheme(w, m.scheme);
  w.put_f64(m.vdd);
  w.put_u64(m.instructions);
  w.put_u64(m.warmup);
  put_core_config(w, m.core);
  put_tep_config(w, m.tep);
  w.put_u8(predictor_code(m.predictor));
  w.put_bool(m.check_semantics);
  w.put_u64(m.commit_trail_stride);
  adapt::put_dvfs_config(w, m.dvfs);
  w.put_u64(m.captured_committed);
  w.put_u64(m.captured_cycle);
  w.put_bool(m.base_captured);
  snap::put_statset(w, m.base);
  w.put_u64(m.base_committed);
  w.put_u64(m.base_cycles);
  w.put_u64(m.warmup_key);
}

RunMeta get_run_meta(snap::Reader& r) {
  RunMeta m;
  m.fault_free = r.get_bool();
  m.profile = get_profile(r);
  if (!m.fault_free) m.scheme = get_scheme(r);
  m.vdd = r.get_f64();
  m.instructions = r.get_u64();
  m.warmup = r.get_u64();
  m.core = get_core_config(r);
  m.tep = get_tep_config(r);
  m.predictor = predictor_from_code(r.get_u8());
  m.check_semantics = r.get_bool();
  m.commit_trail_stride = r.get_u64();
  m.dvfs = adapt::get_dvfs_config(r);
  m.captured_committed = r.get_u64();
  m.captured_cycle = r.get_u64();
  m.base_captured = r.get_bool();
  m.base = snap::get_statset(r);
  m.base_committed = r.get_u64();
  m.base_cycles = r.get_u64();
  m.warmup_key = r.get_u64();
  return m;
}

RunSnapshot RunSnapshot::from_container(snap::Snapshot&& container) {
  RunSnapshot s;
  s.container_ = std::move(container);
  const snap::Chunk& meta = s.container_.require(kChunkMeta);
  if (meta.version != kMetaChunkVersion) {
    throw snap::SnapshotError("META chunk version " + std::to_string(meta.version) +
                              " (this build reads " + std::to_string(kMetaChunkVersion) + ")");
  }
  snap::Reader r(meta.payload);
  s.meta_ = get_run_meta(r);
  r.expect_done("META chunk");
  // Fail fast on a container that validates but cannot possibly resume.
  (void)s.container_.require(kChunkPipe);
  (void)s.container_.require(kChunkTgen);
  return s;
}

RunSnapshot RunSnapshot::read_file(const std::string& path) {
  return from_container(snap::read_snapshot_file(path));
}

void RunSnapshot::write_file(const std::string& path) const {
  snap::write_snapshot_file(path, container_);
}

std::string warmup_key_bytes(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
                             const std::optional<cpu::SchemeConfig>& scheme, double vdd) {
  snap::Writer w;
  put_profile(w, profile);
  put_core_config(w, cfg.core);
  put_tep_config(w, cfg.tep);
  w.put_u8(predictor_code(cfg.predictor));
  w.put_u64(cfg.warmup);
  w.put_bool(cfg.check_semantics);
  w.put_u64(cfg.commit_trail_stride);
  w.put_bool(!scheme.has_value());
  if (scheme) {
    put_scheme(w, *scheme);
    w.put_f64(vdd);
    // Adaptive clocking only engages on scheme runs; folding the config here
    // keeps fault-free baselines sharing one warmup across dvfs settings.
    adapt::put_dvfs_config(w, cfg.dvfs);
  }
  const std::vector<unsigned char> bytes = w.take();
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

u64 warmup_key(const RunnerConfig& cfg, const workload::BenchmarkProfile& profile,
               const std::optional<cpu::SchemeConfig>& scheme, double vdd) {
  return fnv1a(warmup_key_bytes(cfg, profile, scheme, vdd));
}

}  // namespace vasim::core
