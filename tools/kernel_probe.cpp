// Steady-state cycle-loop probe: pregenerates a trace buffer, replays it
// through the pipeline, and reports simulated MIPS for the step() loop only
// (no trace generation or construction in the timed region).
//
//   kernel_probe [--kernel issue-window|delay-queue] [--iq N] [--rob N]
//                [--phys N] [--reps R]
//
// The knobs mirror the vasim CLI so the probe can time either scheduler
// kernel at any issue-queue size (the same grid bench_micro sweeps).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/timing/fault_model.hpp"
#include "src/workload/profiles.hpp"
#include "src/workload/trace_generator.hpp"

using namespace vasim;

namespace {

class ReplaySource final : public isa::InstructionSource {
 public:
  explicit ReplaySource(const std::vector<isa::DynInst>* buf) : buf_(buf) {}
  bool next(isa::DynInst& out) override {
    out = (*buf_)[i_];
    if (++i_ == buf_->size()) i_ = 0;
    return true;
  }
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  const std::vector<isa::DynInst>* buf_;
  std::size_t i_ = 0;
};

double measure_mips(const std::vector<isa::DynInst>& buf, const cpu::CoreConfig& cfg,
                    bool with_faults) {
  const auto prof = workload::spec2006_profile("sjeng");
  ReplaySource src(&buf);
  timing::PathModelConfig pcfg{prof.seed, prof.fr_high_pct / 100.0, prof.fr_low_pct / 100.0};
  const timing::FaultModel fm(pcfg, 0.97);
  core::TimingErrorPredictor tep({}, &fm.environment());
  cpu::Pipeline p(cfg, with_faults ? cpu::scheme_abs() : cpu::scheme_fault_free(), &src,
                  with_faults ? &fm : nullptr, with_faults ? &tep : nullptr);
  constexpr u64 kWarm = 30'000;
  constexpr u64 kMeasure = 300'000;
  while (p.committed() < kWarm) p.step();
  const auto t0 = std::chrono::steady_clock::now();
  while (p.committed() < kWarm + kMeasure) p.step();
  const auto t1 = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(kMeasure) / s;
}

}  // namespace

int main(int argc, char** argv) {
  cpu::CoreConfig cfg;
  int reps = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    const char* val = argv[i + 1];
    if (std::strcmp(key, "--kernel") == 0) {
      if (!cpu::sched_kernel_from_string(val, cfg.sched_kernel)) {
        std::fprintf(stderr, "unknown scheduler kernel '%s'\n", val);
        return 2;
      }
    } else if (std::strcmp(key, "--iq") == 0) {
      cfg.iq_entries = std::atoi(val);
    } else if (std::strcmp(key, "--rob") == 0) {
      cfg.rob_entries = std::atoi(val);
    } else if (std::strcmp(key, "--phys") == 0) {
      cfg.phys_regs = std::atoi(val);
    } else if (std::strcmp(key, "--reps") == 0) {
      reps = std::atoi(val);
    } else {
      std::fprintf(stderr,
                   "usage: kernel_probe [--kernel issue-window|delay-queue] "
                   "[--iq N] [--rob N] [--phys N] [--reps R]\n");
      return 2;
    }
  }
  try {
    cpu::validate_core_config(cfg);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const auto prof = workload::spec2006_profile("sjeng");
  workload::TraceGenerator gen(prof);
  std::vector<isa::DynInst> buf(400'000);
  for (isa::DynInst& d : buf) gen.next(d);

  double best_ff = 0.0;
  double best_abs = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double ff = measure_mips(buf, cfg, false);
    const double ab = measure_mips(buf, cfg, true);
    if (ff > best_ff) best_ff = ff;
    if (ab > best_abs) best_abs = ab;
  }
  std::printf("kernel %s iq %d\n", cpu::to_string(cfg.sched_kernel), cfg.iq_entries);
  std::printf("kernel_mips_fault_free %.0f\nkernel_mips_abs %.0f\n", best_ff, best_abs);
  return 0;
}
