// vasim command-line driver.
//
// Usage:
//   vasim list
//       List the available benchmark profiles and schemes.
//   vasim run --bench <name> --scheme <name> [--vdd V] [--instr N]
//             [--warmup N] [--predictor tep|mre|tvp] [--kanata FILE]
//             [--trace FILE] [--timeline FILE] [--timeline-interval K]
//             [--dvfs static|reactive|predictive] [--epoch N]
//             [--period-min P] [--period-max P]
//             [--stats] [--csv] [--cpi] [--progress] [--profile]
//       Run one simulation and print a summary (or CSV row / full stats).
//       --cpi adds the per-cause commit-slot (CPI stack) table; --trace
//       writes per-instruction Chrome-trace JSON for Perfetto; --timeline
//       samples every registry counter each K commits (default 10000) and
//       writes the per-window series as JSON (or CSV when FILE ends in
//       .csv); --progress prints a live commits/s + ETA line on stderr;
//       --profile attributes the simulator's own wall-time to its pipeline
//       stages (docs/observability.md).
//   vasim sweep --bench <name>|all [--instr N] [--warmup N] [--jobs N]
//               [--batch B] [--shard i/N] [--json FILE] [--trace FILE]
//               [--timeline-interval K] [--dvfs POLICY] [--epoch N]
//               [--cpi] [--progress] [--profile]
//       Run every scheme at both faulty supplies for one benchmark (or the
//       whole suite), fanned out over a thread pool (VASIM_JOBS or --jobs;
//       results are deterministic at any worker count), optionally dumping
//       the machine-readable JSON result sink to FILE, a Chrome-trace span
//       per job to --trace, per-scheme CPI stacks with --cpi, and a live
//       done/total + ETA line on stderr with --progress.  --batch (or
//       VASIM_BATCH) advances B jobs per worker through the lockstep engine;
//       --shard runs only the i-th of N deterministic grid partitions and
//       writes a JSON fragment instead of the tables (docs/sweep.md);
//       --timeline-interval embeds a per-job timeline in the JSON sink and
//       appends Perfetto counter tracks to --trace; --profile prints
//       per-worker and whole-sweep simulator self-profiles.
//   vasim sweep-merge FRAGMENT... --out FILE
//       Join per-shard fragments back into one submission-ordered schema-4
//       report; the FNV checksum is bitwise identical to the unsharded run.
//   vasim record --bench <name> --out FILE [--instr N]
//       Capture a committed-path trace to a vasim-trace file.
//   vasim replay --trace FILE --scheme <name> [--vdd V] [--instr N]
//       Drive the pipeline from a recorded (or external) trace file.
//   vasim snap save --bench <name> --scheme <name> --out FILE [--vdd V]
//                   [--instr N] [--warmup N] [--at N] [--predictor tep|mre|tvp]
//       Simulate to the --at commit point (default: end of warmup) and write
//       a checksummed snapshot; resume with `vasim run --from-snapshot`.
//   vasim snap info FILE
//       Pretty-print a snapshot's header, chunk table, CRC status and META.
//   vasim serve --listen unix:PATH|tcp:PORT [--workers N] [--queue N]
//               [--cache N] [--max-cells N] [--instr N] [--warmup N]
//               [--timeline-interval K] [--profile]
//       Run the sweep-as-a-service daemon (docs/serve.md): a line-delimited
//       JSON protocol over a local socket with a bounded admission queue and
//       a cross-request warm-start snapshot cache.  Runs until a client
//       sends {"op":"shutdown"}.
//   vasim loadgen --connect ENDPOINT [--clients N] [--jobs N] [--cells N]
//                 [--interval MS] [--cancel-frac F] [--seed S] [--instr N]
//                 [--warmup N] [--benches a,b] [--schemes x,y] [--vdds v,w]
//                 [--json FILE] [--shutdown]
//       Replay a seed-deterministic open-loop request mix against a running
//       daemon and record latency percentiles, backpressure counts and the
//       cross-client checksum-consistency verdict to BENCH_serve.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "src/adapt/dvfs.hpp"
#include "src/common/env.hpp"
#include "src/common/table.hpp"
#include "src/cpu/config.hpp"
#include "src/core/runner.hpp"
#include "src/core/shard.hpp"
#include "src/core/snapshot.hpp"
#include "src/core/sweep.hpp"
#include "src/cpu/observer.hpp"
#include "src/obs/cpi.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/loadgen.hpp"
#include "src/serve/server.hpp"
#include "src/serve/socket.hpp"
#include "src/snap/format.hpp"
#include "src/workload/trace_file.hpp"
#include "src/workload/trace_generator.hpp"

namespace {

using namespace vasim;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return options.count(key) != 0; }
};

bool parse_options(int start, int argc, char** argv, Args& a) {
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return false;
    key = key.substr(2);
    if (key == "stats" || key == "csv" || key == "cpi" || key == "progress" ||
        key == "reuse-warmup" || key == "profile" || key == "shutdown") {
      a.options[key] = "1";
    } else {
      if (i + 1 >= argc) return false;
      a.options[key] = argv[++i];
    }
  }
  return true;
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  if (!parse_options(2, argc, argv, a)) return std::nullopt;
  return a;
}

int usage() {
  std::cerr << "usage:\n"
            << "  vasim list\n"
            << "  vasim run --bench <name> --scheme "
               "fault-free|razor|ep|abs|ffs|cds [--vdd V]\n"
            << "            [--instr N] [--warmup N] [--predictor tep|mre|tvp]\n"
            << "            [--kernel issue-window|delay-queue] [--iq N] [--rob N] [--phys N]\n"
            << "            [--kanata FILE] [--trace FILE] [--timeline FILE]\n"
            << "            [--timeline-interval K] [--stats] [--csv] [--cpi]\n"
            << "            [--dvfs static|reactive|predictive] [--epoch N]\n"
            << "            [--period-min P] [--period-max P]\n"
            << "            [--progress] [--profile]\n"
            << "  vasim run --from-snapshot FILE [--instr N] [--timeline FILE]\n"
            << "            [--stats] [--csv] [--cpi] [--progress] [--profile]\n"
            << "  vasim sweep --bench <name>|all [--instr N] [--warmup N] [--jobs N]\n"
            << "              [--kernel issue-window|delay-queue] [--iq N] [--rob N] [--phys N]\n"
            << "              [--batch B] [--shard i/N] [--json FILE] [--trace FILE]\n"
            << "              [--timeline-interval K] [--dvfs POLICY] [--epoch N]\n"
            << "              [--period-min P] [--period-max P] [--cpi] [--progress]\n"
            << "              [--reuse-warmup] [--profile]\n"
            << "  vasim sweep-merge FRAGMENT... --out FILE\n"
            << "  vasim snap save --bench <name> --scheme <name> --out FILE [--vdd V]\n"
            << "                  [--instr N] [--warmup N] [--at N] [--predictor tep|mre|tvp]\n"
            << "  vasim snap info FILE\n"
            << "  vasim serve --listen unix:PATH|tcp:PORT [--workers N] [--queue N]\n"
            << "              [--cache N] [--max-cells N] [--instr N] [--warmup N]\n"
            << "              [--timeline-interval K] [--dvfs POLICY] [--epoch N] [--profile]\n"
            << "  vasim loadgen --connect ENDPOINT [--clients N] [--jobs N] [--cells N]\n"
            << "                [--interval MS] [--cancel-frac F] [--seed S] [--instr N]\n"
            << "                [--warmup N] [--benches a,b] [--schemes x,y] [--vdds v,w]\n"
            << "                [--json FILE] [--shutdown]\n";
  return 2;
}

int cmd_list() {
  TextTable t({"benchmark", "paper-IPC", "FR%@0.97", "FR%@1.04"});
  for (const auto& p : workload::spec2006_profiles()) {
    t.add_row({p.name, TextTable::fmt(p.paper_ipc, 2), TextTable::fmt(p.fr_high_pct, 2),
               TextTable::fmt(p.fr_low_pct, 2)});
  }
  std::cout << t.render("SPEC2006-like benchmark profiles") << "\n";
  std::cout << "schemes: fault-free razor ep abs ffs cds\n"
            << "supplies: 1.10 (fault-free) 1.04 (low FR) 0.97 (high FR)\n";
  return 0;
}

core::RunnerConfig runner_config(const Args& args) {
  core::RunnerConfig rc;
  rc.instructions = std::strtoull(args.get("instr", "150000").c_str(), nullptr, 10);
  rc.warmup = std::strtoull(args.get("warmup", "150000").c_str(), nullptr, 10);
  const std::string pred = args.get("predictor", "tep");
  if (pred == "mre") {
    rc.predictor = core::PredictorKind::kMre;
  } else if (pred == "tvp") {
    rc.predictor = core::PredictorKind::kTvp;
  }
  rc.timeline_interval = std::strtoull(args.get("timeline-interval", "0").c_str(), nullptr, 10);
  if (args.has("kernel")) {
    const std::string kname = args.get("kernel", "");
    if (!cpu::sched_kernel_from_string(kname.c_str(), rc.core.sched_kernel)) {
      throw std::invalid_argument("unknown scheduler kernel '" + kname +
                                  "' (expected issue-window or delay-queue)");
    }
  }
  if (args.has("iq")) rc.core.iq_entries = std::atoi(args.get("iq", "").c_str());
  if (args.has("rob")) rc.core.rob_entries = std::atoi(args.get("rob", "").c_str());
  if (args.has("phys")) rc.core.phys_regs = std::atoi(args.get("phys", "").c_str());
  cpu::validate_core_config(rc.core);  // fail fast with the named reason
  if (args.has("dvfs")) rc.dvfs.policy = adapt::dvfs_policy_from_string(args.get("dvfs", ""));
  if (args.has("epoch")) {
    rc.dvfs.epoch = std::strtoull(args.get("epoch", "0").c_str(), nullptr, 10);
  }
  if (args.has("period-min")) {
    rc.dvfs.period_min_permille =
        static_cast<u32>(std::strtoul(args.get("period-min", "0").c_str(), nullptr, 10));
  }
  if (args.has("period-max")) {
    rc.dvfs.period_max_permille =
        static_cast<u32>(std::strtoul(args.get("period-max", "0").c_str(), nullptr, 10));
  }
  adapt::validate_dvfs_config(rc.dvfs);  // same fail-fast style as the core knobs
  return rc;
}

/// Default sampling grain when --timeline names a file but no interval.
constexpr u64 kDefaultTimelineInterval = 10'000;

/// Copies a just-written result JSON into the tracked bench/results/
/// directory (VASIM_RESULTS_DIR, injected by CMake) -- the same hook
/// bench_micro uses, so `vasim loadgen` updates the repo's serve-perf
/// trajectory without a manual cp.  Disabled with VASIM_RESULTS=0; quietly
/// skipped when the directory is absent.
void copy_to_results(const std::string& path) {
#ifdef VASIM_RESULTS_DIR
  if (env_u64("VASIM_RESULTS", 1) == 0) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  // Strip any directory prefix: results are tracked flat by file name.
  const std::size_t slash = path.find_last_of('/');
  const std::string fname = slash == std::string::npos ? path : path.substr(slash + 1);
  std::ofstream out(std::string(VASIM_RESULTS_DIR) + "/" + fname, std::ios::binary);
  if (!out) return;
  out << in.rdbuf();
#else
  (void)path;
#endif
}

/// Writes a finalized timeline as JSON, or CSV when the path ends in .csv.
int write_timeline_file(const obs::Timeline& tl, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    tl.write_csv(out);
  } else {
    tl.write_json(out);
  }
  std::cout << "timeline with " << tl.windows() << " windows (every " << tl.interval()
            << " commits) written to " << path << "\n";
  return 0;
}

/// The --profile report: whole-run stage attribution, plus a per-worker
/// breakdown when more than one host thread contributed.
void print_profile_tables(const obs::ProfilerHub& hub) {
  const obs::Profiler::Snapshot total = hub.total();
  const double total_ns = static_cast<double>(total.total_ns());
  TextTable t({"phase", "calls", "ms", "share%"});
  for (int p = 0; p < obs::kNumProfPhases; ++p) {
    const auto phase = static_cast<obs::ProfPhase>(p);
    const auto i = static_cast<std::size_t>(p);
    t.add_row({std::string(obs::to_string(phase)), std::to_string(total.calls[i]),
               TextTable::fmt(static_cast<double>(total.ns[i]) / 1e6, 2),
               TextTable::fmt(total_ns == 0.0 ? 0.0
                                              : static_cast<double>(total.ns[i]) / total_ns * 100.0,
                              1)});
  }
  std::cout << t.render("simulator self-profile") << "\n"
            << "(fault-check is part of select, event-wheel part of execute; shares are\n"
            << " of the five top-level phases)\n";
  const std::vector<obs::ProfilerHub::WorkerReport> workers = hub.per_worker();
  if (workers.size() > 1) {
    std::vector<std::string> header = {"worker"};
    for (int p = 0; p < obs::kNumProfPhases; ++p) {
      header.emplace_back(obs::to_string(static_cast<obs::ProfPhase>(p)));
    }
    header.emplace_back("total");
    TextTable wt(header);
    for (const obs::ProfilerHub::WorkerReport& w : workers) {
      std::vector<std::string> row = {std::to_string(w.worker)};
      for (int p = 0; p < obs::kNumProfPhases; ++p) {
        row.push_back(TextTable::fmt(static_cast<double>(w.snap.ns[static_cast<std::size_t>(p)]) / 1e6, 2));
      }
      row.push_back(TextTable::fmt(static_cast<double>(w.snap.total_ns()) / 1e6, 2));
      wt.add_row(row);
    }
    std::cout << wt.render("self-profile per worker (ms)") << "\n";
  }
}

void print_result(const core::RunResult& r, const core::RunResult* baseline, bool csv) {
  if (csv) {
    // Columns mirror the sweep JSON schema (docs/sweep.md) field for field.
    std::cout << r.benchmark << "," << r.scheme << "," << r.vdd << "," << r.committed << ","
              << r.cycles << "," << TextTable::fmt(r.ipc, 4) << ","
              << TextTable::fmt(r.fault_rate_pct, 3) << "," << r.replays << ","
              << TextTable::fmt(r.predictor_accuracy, 4) << ","
              << TextTable::fmt(r.energy.total_nj(), 1) << ","
              << TextTable::fmt(r.energy.edp, 0) << "\n";
    return;
  }
  std::cout << r.benchmark << " / " << r.scheme << " @ " << TextTable::fmt(r.vdd, 2)
            << " V: IPC " << TextTable::fmt(r.ipc) << ", FR " << TextTable::fmt(r.fault_rate_pct, 2)
            << "%, replays " << TextTable::fmt(r.replays, 0) << ", energy "
            << TextTable::fmt(r.energy.total_nj(), 1) << " nJ\n";
  if (baseline != nullptr) {
    const core::Overheads o = core::overhead_vs(*baseline, r);
    std::cout << "  vs fault-free: perf overhead " << TextTable::fmt(o.perf_pct, 2)
              << "%, ED overhead " << TextTable::fmt(o.ed_pct, 2) << "%\n";
  }
  if (r.dvfs) {
    const core::DvfsSummary& d = *r.dvfs;
    std::cout << "  dvfs " << d.policy << ": " << d.epochs << " epochs, period "
              << d.period_final << "‰ (range " << d.period_lo << "-" << d.period_hi
              << "‰, avg " << TextTable::fmt(d.avg_period_permille, 1)
              << "‰), throughput " << TextTable::fmt(d.throughput, 4)
              << " instr/nominal-cycle\n";
  }
}

void print_cpi_table(const std::string& title, const obs::CpiStack& cpi, int commit_width,
                     u64 committed) {
  TextTable t({"cause", "slots", "cpi", "share%"});
  const u64 total = cpi.total();
  for (int c = 0; c < obs::kNumCpiCauses; ++c) {
    const auto cause = static_cast<obs::CpiCause>(c);
    const u64 slots = cpi[cause];
    if (slots == 0 && cause != obs::CpiCause::kBase) continue;
    t.add_row({std::string(obs::to_string(cause)), std::to_string(slots),
               TextTable::fmt(cpi.cpi_of(cause, commit_width, committed), 4),
               TextTable::fmt(total == 0 ? 0.0
                                         : static_cast<double>(slots) /
                                               static_cast<double>(total) * 100.0,
                              1)});
  }
  std::cout << t.render("CPI stack: " + title) << "\n";
}

int cmd_run_from_snapshot(const Args& args) {
  try {
    const core::RunSnapshot snap = core::RunSnapshot::read_file(args.get("from-snapshot", ""));
    const core::RunMeta& m = snap.meta();
    // The runner configuration is rebuilt from META so the resume is
    // warmup-compatible by construction; only the measurement length may be
    // overridden from the command line.
    core::RunnerConfig rc;
    rc.instructions = args.has("instr")
                          ? std::strtoull(args.get("instr", "").c_str(), nullptr, 10)
                          : m.instructions;
    rc.warmup = m.warmup;
    rc.core = m.core;
    rc.tep = m.tep;
    rc.predictor = m.predictor;
    rc.check_semantics = m.check_semantics;
    rc.commit_trail_stride = m.commit_trail_stride;
    rc.dvfs = m.dvfs;
    rc.timeline_interval =
        std::strtoull(args.get("timeline-interval", "0").c_str(), nullptr, 10);
    if (args.has("timeline") && rc.timeline_interval == 0) {
      rc.timeline_interval = kDefaultTimelineInterval;
    }
    rc.progress = args.has("progress");
    obs::ProfilerHub hub;
    if (args.has("profile")) rc.profiler_hub = &hub;
    const core::ExperimentRunner runner(rc);
    const core::RunResult r = runner.run_from(snap);
    if (args.has("csv")) {
      std::cout << "benchmark,scheme,vdd,committed,cycles,ipc,fault_rate_pct,replays,"
                   "predictor_accuracy,energy_nj,edp\n";
    }
    print_result(r, nullptr, args.has("csv"));
    if (args.has("stats")) std::cout << "\n" << r.stats.to_string();
    if (args.has("cpi")) print_cpi_table(r.benchmark + "/" + r.scheme, r.cpi, rc.core.commit_width, r.committed);
    if (args.has("timeline") && r.timeline != nullptr) {
      const int rcio = write_timeline_file(*r.timeline, args.get("timeline", ""));
      if (rcio != 0) return rcio;
    }
    if (args.has("profile")) print_profile_tables(hub);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

int cmd_run(const Args& args) {
  if (args.has("from-snapshot")) return cmd_run_from_snapshot(args);
  if (!args.has("bench") || !args.has("scheme")) return usage();
  const auto scheme = core::scheme_by_name(args.get("scheme", ""));
  if (!scheme) {
    std::cerr << "unknown scheme '" << args.get("scheme", "") << "'\n";
    return 2;
  }
  workload::BenchmarkProfile prof;
  try {
    prof = workload::spec2006_profile(args.get("bench", ""));
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double vdd = std::strtod(args.get("vdd", "0.97").c_str(), nullptr);
  core::RunnerConfig rc = runner_config(args);
  if (args.has("timeline") && rc.timeline_interval == 0) {
    rc.timeline_interval = kDefaultTimelineInterval;
  }
  rc.progress = args.has("progress");
  obs::ProfilerHub hub;
  if (args.has("profile")) rc.profiler_hub = &hub;
  const core::ExperimentRunner runner(rc);
  // The fault-free comparison run keeps the plain configuration: its
  // telemetry would only shadow the requested scheme's.
  core::RunnerConfig rc_baseline = rc;
  rc_baseline.timeline_interval = 0;
  rc_baseline.progress = false;
  rc_baseline.profiler_hub = nullptr;

  if (args.has("kanata") || args.has("trace")) {
    if (rc.dvfs.adaptive()) {
      throw std::invalid_argument(
          "dvfs: adaptive policies are not supported with --kanata/--trace "
          "(the trace path bypasses the experiment runner); drop the trace "
          "flags or use --dvfs static");
    }
    // Trace dumps need a hand-built pipeline to attach observers; both
    // writers can ride the same run through the ObserverMux.
    workload::TraceGenerator gen(prof);
    timing::PathModelConfig pcfg;
    pcfg.seed = prof.seed;
    pcfg.p_faulty_high = prof.fr_high_pct / 100.0 * prof.fr_calib_high;
    pcfg.p_faulty_low = prof.fr_low_pct / 100.0 * prof.fr_calib_low;
    const timing::FaultModel fm(pcfg, vdd);
    core::TimingErrorPredictor tep(rc.tep, &fm.environment());
    cpu::Pipeline pipe(rc.core, *scheme, &gen, &fm,
                       scheme->use_predictor ? &tep : nullptr);
    std::unique_ptr<std::ofstream> kanata_out;
    std::unique_ptr<cpu::KanataTraceWriter> kanata;
    if (args.has("kanata")) {
      kanata_out = std::make_unique<std::ofstream>(args.get("kanata", "trace.kanata"));
      kanata = std::make_unique<cpu::KanataTraceWriter>(kanata_out.get(), 20'000);
      pipe.add_observer(kanata.get());
    }
    std::unique_ptr<std::ofstream> trace_out;
    std::unique_ptr<obs::ChromeTraceWriter> trace;
    std::unique_ptr<cpu::TraceObserver> trace_obs;
    if (args.has("trace")) {
      trace_out = std::make_unique<std::ofstream>(args.get("trace", "trace.json"));
      trace = std::make_unique<obs::ChromeTraceWriter>(trace_out.get());
      trace_obs = std::make_unique<cpu::TraceObserver>(trace.get(), 20'000);
      pipe.add_observer(trace_obs.get());
    }
    std::optional<obs::Timeline> tl;
    if (rc.timeline_interval > 0) {
      obs::Timeline::Config tc;
      tc.interval = rc.timeline_interval;
      tc.capacity_hint =
          static_cast<std::size_t>((rc.warmup + rc.instructions) / rc.timeline_interval) + 8;
      tl.emplace(tc, &pipe.registry());
      pipe.set_timeline(&*tl, tc.interval);
    }
    std::optional<obs::Profiler> profiler;
    if (args.has("profile")) {
      profiler.emplace();
      pipe.set_profiler(&*profiler);
    }
    const cpu::PipelineResult pr = pipe.run(rc.instructions, rc.warmup);
    if (tl) tl->finalize(pipe.now(), pipe.committed());
    std::cout << "committed " << pr.committed << " in " << pr.cycles << " cycles (IPC "
              << TextTable::fmt(pr.ipc()) << ")\n";
    if (kanata) {
      std::cout << "Kanata trace with " << kanata->instructions_logged()
                << " instructions written to " << args.get("kanata", "") << "\n";
    }
    if (trace) {
      if (tl && tl->windows() > 0) {
        // The instruction spans place one cycle at one microsecond (pid 1);
        // the counter tracks share that timebase on their own process row.
        trace->process_name(2, "timeline");
        tl->append_counter_tracks(*trace, 2, 0, "", 0.0, 1.0);
      }
      trace->finish();
      std::cout << "Chrome trace with " << trace_obs->instructions_traced()
                << " instructions written to " << args.get("trace", "")
                << " (open in ui.perfetto.dev)\n";
    }
    if (args.has("cpi")) {
      print_cpi_table(prof.name + "/" + scheme->name, pr.cpi, rc.core.commit_width,
                      pr.committed);
    }
    if (args.has("timeline") && tl) {
      const int rcio = write_timeline_file(*tl, args.get("timeline", ""));
      if (rcio != 0) return rcio;
    }
    if (profiler) {
      hub.merge(profiler->snapshot());
      print_profile_tables(hub);
    }
    return 0;
  }

  const core::RunResult r = scheme->name == "fault-free"
                                ? runner.run_fault_free(prof, vdd)
                                : runner.run(prof, *scheme, vdd);
  std::optional<core::RunResult> baseline;
  if (scheme->name != "fault-free") {
    baseline = core::ExperimentRunner(rc_baseline).run_fault_free(prof, vdd);
  }
  if (args.has("csv")) {
    std::cout << "benchmark,scheme,vdd,committed,cycles,ipc,fault_rate_pct,replays,"
                 "predictor_accuracy,energy_nj,edp\n";
  }
  print_result(r, baseline ? &*baseline : nullptr, args.has("csv"));
  if (args.has("stats")) std::cout << "\n" << r.stats.to_string();
  if (args.has("cpi")) {
    print_cpi_table(prof.name + "/" + scheme->name, r.cpi, rc.core.commit_width, r.committed);
  }
  if (args.has("timeline") && r.timeline != nullptr) {
    const int rcio = write_timeline_file(*r.timeline, args.get("timeline", ""));
    if (rcio != 0) return rcio;
  }
  if (args.has("profile")) print_profile_tables(hub);
  return 0;
}

int cmd_sweep(const Args& args) {
  if (!args.has("bench")) return usage();
  std::vector<workload::BenchmarkProfile> profiles;
  const std::string which = args.get("bench", "");
  if (which == "all") {
    profiles = workload::spec2006_profiles();
  } else {
    try {
      profiles.push_back(workload::spec2006_profile(which));
    } catch (const std::out_of_range& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  const std::size_t workers =
      args.has("jobs") ? std::strtoull(args.get("jobs", "1").c_str(), nullptr, 10)
                       : core::sweep_workers_from_env();
  core::RunnerConfig sweep_rc = runner_config(args);
  obs::ProfilerHub hub;
  if (args.has("profile")) sweep_rc.profiler_hub = &hub;
  core::SweepRunner sweeper(sweep_rc, workers);
  if (args.has("progress")) sweeper.set_progress(true);
  if (args.has("reuse-warmup")) sweeper.set_reuse_warmup(true);
  if (args.has("batch")) {
    sweeper.set_batch(std::strtoull(args.get("batch", "1").c_str(), nullptr, 10));
  }

  // (fault-free + every scheme) x both faulty supplies per profile, one
  // thread-pooled grid; results come back in submission order.
  const double vdds[] = {timing::SupplyPoints::kLowFault, timing::SupplyPoints::kHighFault};
  std::vector<core::SweepJob> jobs;
  for (const auto& prof : profiles) {
    for (const double vdd : vdds) {
      jobs.push_back({prof, std::nullopt, vdd, std::nullopt});
      for (const auto& scheme : core::comparative_schemes()) {
        jobs.push_back({prof, scheme, vdd, std::nullopt});
      }
    }
  }

  if (args.has("shard")) {
    // Shard mode: run only this shard's deterministic partition of the full
    // grid and emit a fragment (job indices are global, so the per-supply
    // tables would be misleading -- the merge side renders the report).
    core::ShardSpec spec;
    try {
      spec = core::parse_shard(args.get("shard", ""));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    const std::vector<std::size_t> indices =
        core::shard_indices(jobs, spec, args.has("reuse-warmup"), sweeper.config());
    std::vector<core::SweepJob> shard_jobs;
    shard_jobs.reserve(indices.size());
    for (const std::size_t i : indices) shard_jobs.push_back(jobs[i]);
    core::SweepReport shard_report;
    try {
      shard_report = sweeper.run(shard_jobs);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    const double wall_ms = shard_report.wall_ms;
    const core::SweepFragment frag = core::make_fragment(
        "cli_sweep", spec, jobs.size(), indices, std::move(shard_report));
    const std::string path =
        args.has("json") ? args.get("json", "")
                         : "BENCH_sweep.shard_" + std::to_string(spec.index) + "_of_" +
                               std::to_string(spec.count) + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    core::write_fragment_json(out, frag);
    std::cout << "shard " << spec.index << "/" << spec.count << ": " << indices.size()
              << " of " << jobs.size() << " jobs in " << TextTable::fmt(wall_ms, 0)
              << " ms; fragment written to " << path << "\n";
    return 0;
  }

  const core::SweepReport report = sweeper.run(jobs);

  const int commit_width = sweeper.config().core.commit_width;
  std::size_t at = 0;
  for (const auto& prof : profiles) {
    for (const double vdd : vdds) {
      const std::size_t base_at = at;
      const core::RunResult& base = report.jobs[at++].result;
      TextTable t({"scheme", "IPC", "FR%", "replays", "perf-ovh%", "ED-ovh%"});
      t.add_row({"fault-free", TextTable::fmt(base.ipc), "-", "-", "0.00", "0.00"});
      for (std::size_t s = 0; s < core::comparative_schemes().size(); ++s) {
        const core::RunResult& r = report.jobs[at++].result;
        const core::Overheads o = core::overhead_vs(base, r);
        t.add_row({r.scheme, TextTable::fmt(r.ipc), TextTable::fmt(r.fault_rate_pct, 2),
                   TextTable::fmt(r.replays, 0), TextTable::fmt(o.perf_pct, 2),
                   TextTable::fmt(o.ed_pct, 2)});
      }
      std::cout << t.render(prof.name + " @ " + TextTable::fmt(vdd, 2) + " V") << "\n";
      if (args.has("cpi")) {
        // One row per scheme, one column per cause: where every lost commit
        // slot went, in cycles-per-instruction units.
        std::vector<std::string> header = {"scheme"};
        for (int c = 0; c < obs::kNumCpiCauses; ++c) {
          header.emplace_back(obs::to_string(static_cast<obs::CpiCause>(c)));
        }
        header.emplace_back("cpi");
        TextTable ct(header);
        for (std::size_t j = base_at; j < at; ++j) {
          const core::RunResult& r = report.jobs[j].result;
          std::vector<std::string> row = {r.scheme};
          for (int c = 0; c < obs::kNumCpiCauses; ++c) {
            row.push_back(TextTable::fmt(
                r.cpi.cpi_of(static_cast<obs::CpiCause>(c), commit_width, r.committed), 3));
          }
          row.push_back(TextTable::fmt(
              r.committed == 0 ? 0.0
                               : static_cast<double>(r.cycles) / static_cast<double>(r.committed),
              3));
          ct.add_row(row);
        }
        std::cout << ct.render("CPI stacks: " + prof.name + " @ " + TextTable::fmt(vdd, 2) + " V")
                  << "\n";
      }
    }
  }
  std::cout << report.jobs.size() << " runs in " << TextTable::fmt(report.wall_ms, 0)
            << " ms on " << report.workers << " worker(s)\n";
  if (args.has("profile")) print_profile_tables(hub);
  if (args.has("reuse-warmup")) {
    std::cout << "warmup sharing: " << report.warmup_groups << " shared group(s), "
              << report.warmup_cycles_simulated << " warmup cycles simulated, "
              << report.warmup_cycles_saved << " saved\n";
  }

  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::cerr << "cannot open " << args.get("json", "") << "\n";
      return 2;
    }
    core::write_sweep_json(out, "cli_sweep", report);
    std::cout << "JSON results written to " << args.get("json", "") << "\n";
  }
  if (args.has("trace")) {
    std::ofstream out(args.get("trace", ""));
    if (!out) {
      std::cerr << "cannot open " << args.get("trace", "") << "\n";
      return 2;
    }
    core::write_chrome_trace(out, report);
    std::cout << "Chrome trace written to " << args.get("trace", "")
              << " (open in ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace

namespace {

int cmd_record(const Args& args) {
  if (!args.has("bench") || !args.has("out")) return usage();
  workload::BenchmarkProfile prof;
  try {
    prof = workload::spec2006_profile(args.get("bench", ""));
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const u64 n = std::strtoull(args.get("instr", "100000").c_str(), nullptr, 10);
  workload::TraceGenerator gen(prof);
  const auto trace = workload::record_trace(gen, n);
  std::ofstream out(args.get("out", ""));
  if (!out) {
    std::cerr << "cannot open " << args.get("out", "") << "\n";
    return 2;
  }
  workload::write_trace(out, trace);
  std::cout << "wrote " << trace.size() << " instructions to " << args.get("out", "") << "\n";
  return 0;
}

int cmd_replay(const Args& args) {
  if (!args.has("trace") || !args.has("scheme")) return usage();
  const auto scheme = core::scheme_by_name(args.get("scheme", ""));
  if (!scheme) {
    std::cerr << "unknown scheme '" << args.get("scheme", "") << "'\n";
    return 2;
  }
  std::ifstream in(args.get("trace", ""));
  if (!in) {
    std::cerr << "cannot open " << args.get("trace", "") << "\n";
    return 2;
  }
  std::unique_ptr<workload::TraceFileSource> src;
  try {
    src = std::make_unique<workload::TraceFileSource>(in, /*loop=*/true);
  } catch (const workload::TraceFormatError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double vdd = std::strtod(args.get("vdd", "0.97").c_str(), nullptr);
  const core::RunnerConfig rc = runner_config(args);
  timing::PathModelConfig pcfg;
  pcfg.seed = std::strtoull(args.get("seed", "2013").c_str(), nullptr, 10);
  const timing::FaultModel fm(pcfg, vdd);
  core::TimingErrorPredictor tep(rc.tep, &fm.environment());
  cpu::Pipeline pipe(rc.core, *scheme, src.get(), &fm,
                     scheme->use_predictor ? &tep : nullptr);
  const cpu::PipelineResult pr = pipe.run(rc.instructions, rc.warmup);
  std::cout << "trace of " << src->size() << " instructions (looped): committed "
            << pr.committed << " in " << pr.cycles << " cycles (IPC "
            << TextTable::fmt(pr.ipc()) << "), " << pr.stats.count("fault.actual")
            << " faults, " << pr.stats.count("fault.replays") << " replays\n";
  return 0;
}

int cmd_snap_save(const Args& args) {
  if (!args.has("bench") || !args.has("scheme") || !args.has("out")) return usage();
  const auto scheme = core::scheme_by_name(args.get("scheme", ""));
  if (!scheme) {
    std::cerr << "unknown scheme '" << args.get("scheme", "") << "'\n";
    return 2;
  }
  workload::BenchmarkProfile prof;
  try {
    prof = workload::spec2006_profile(args.get("bench", ""));
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double vdd = std::strtod(args.get("vdd", "0.97").c_str(), nullptr);
  const core::RunnerConfig rc = runner_config(args);
  const u64 at = args.has("at") ? std::strtoull(args.get("at", "").c_str(), nullptr, 10)
                                : rc.warmup;
  // Like run/sweep, the "fault-free" scheme name selects the baseline
  // wiring: no fault model, no predictors.
  const std::optional<cpu::SchemeConfig> scheme_opt =
      scheme->name == "fault-free" ? std::optional<cpu::SchemeConfig>{} : scheme;
  try {
    const core::ExperimentRunner runner(rc);
    const core::RunSnapshot snap = runner.capture(prof, scheme_opt, vdd, at);
    snap.write_file(args.get("out", ""));
    std::cout << "snapshot of " << prof.name << " / " << args.get("scheme", "") << " @ "
              << TextTable::fmt(vdd, 2) << " V at commit " << snap.meta().captured_committed
              << " (cycle " << snap.meta().captured_cycle << ") written to "
              << args.get("out", "") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

int cmd_snap_info(const std::string& path) {
  snap::SnapshotInfo info;
  try {
    info = snap::read_snapshot_info(path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::cout << path << ": snapshot format v" << info.format_version << ", " << info.file_size
            << " bytes, endianness " << (info.endian_ok ? "ok" : "MISMATCH") << "\n";
  TextTable t({"chunk", "version", "bytes", "crc"});
  bool all_crc_ok = info.endian_ok;
  for (const snap::ChunkInfo& c : info.chunks) {
    all_crc_ok = all_crc_ok && c.crc_ok;
    char crc[32];
    std::snprintf(crc, sizeof crc, c.crc_ok ? "%08x" : "%08x MISMATCH", c.crc_stored);
    t.add_row({snap::tag_name(c.tag), std::to_string(c.version), std::to_string(c.size), crc});
  }
  std::cout << t.render("chunks") << "\n";
  if (!all_crc_ok) {
    std::cerr << "snapshot is damaged; it will be rejected on load\n";
    return 2;
  }
  try {
    const core::RunSnapshot s = core::RunSnapshot::read_file(path);
    const core::RunMeta& m = s.meta();
    TextTable mt({"field", "value"});
    mt.add_row({"benchmark", m.profile.name});
    mt.add_row({"scheme", m.fault_free ? "fault-free (baseline wiring)" : m.scheme.name});
    mt.add_row({"vdd", TextTable::fmt(m.vdd, 2)});
    mt.add_row({"warmup / instructions",
                std::to_string(m.warmup) + " / " + std::to_string(m.instructions)});
    mt.add_row({"captured at commit", std::to_string(m.captured_committed)});
    mt.add_row({"captured at cycle", std::to_string(m.captured_cycle)});
    mt.add_row({"measurement base", m.base_captured
                                        ? "captured (commit " + std::to_string(m.base_committed) + ")"
                                        : "pre-warmup (re-derived on resume)"});
    mt.add_row({"semantics checker", m.check_semantics ? "attached" : "off"});
    mt.add_row({"dvfs", m.dvfs.adaptive()
                            ? std::string(adapt::to_string(m.dvfs.policy)) + " (epoch " +
                                  std::to_string(m.dvfs.epoch) + ", period " +
                                  std::to_string(m.dvfs.period_min_permille) + "-" +
                                  std::to_string(m.dvfs.period_max_permille) + " permille)"
                            : "static"});
    char key[32];
    std::snprintf(key, sizeof key, "%016llx", static_cast<unsigned long long>(m.warmup_key));
    mt.add_row({"warmup key", key});
    std::cout << mt.render("META") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

int cmd_sweep_merge(int argc, char** argv) {
  // Positional fragment paths plus --out; parsed by hand because the
  // generic parser only understands --key value pairs.
  std::vector<std::string> paths;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || out_path.empty()) return usage();
  try {
    std::vector<core::SweepFragment> fragments;
    fragments.reserve(paths.size());
    for (const std::string& p : paths) {
      std::ifstream in(p);
      if (!in) {
        std::cerr << "cannot open " << p << "\n";
        return 2;
      }
      fragments.push_back(core::read_fragment_json(in, p));
    }
    const std::string name = fragments.front().name;
    const core::SweepReport merged = core::merge_fragments(std::move(fragments));
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 2;
    }
    core::write_sweep_json(out, name, merged);
    char checksum[32];
    std::snprintf(checksum, sizeof checksum, "%016llx",
                  static_cast<unsigned long long>(core::sweep_checksum(merged)));
    std::cout << "merged " << paths.size() << " fragment(s) -> " << merged.jobs.size()
              << " jobs, checksum " << checksum << ", report written to " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int cmd_serve(const Args& args) {
  if (!args.has("listen")) return usage();
  try {
    serve::ServeConfig sc;
    sc.workers = std::strtoull(args.get("workers", "2").c_str(), nullptr, 10);
    sc.queue_limit = std::strtoull(args.get("queue", "8").c_str(), nullptr, 10);
    sc.cache_capacity = std::strtoull(args.get("cache", "32").c_str(), nullptr, 10);
    sc.max_cells_per_job = std::strtoull(args.get("max-cells", "1024").c_str(), nullptr, 10);
    sc.runner = runner_config(args);
    obs::ProfilerHub hub;
    if (args.has("profile")) sc.profiler_hub = &hub;
    serve::Server server(sc);
    const serve::Endpoint ep = serve::parse_endpoint(args.get("listen", ""));
    serve::SocketServer transport(server, ep);
    transport.start();
    // One parseable "ready" line (flushed) so scripts can wait on it.
    if (ep.kind == serve::Endpoint::Kind::kTcp) {
      std::cout << "vasim serve: listening on tcp:127.0.0.1:" << transport.resolved_port();
    } else {
      std::cout << "vasim serve: listening on unix:" << ep.path;
    }
    std::cout << " (" << sc.workers << " workers, queue " << sc.queue_limit << ", cache "
              << sc.cache_capacity << ")" << std::endl;
    transport.serve_until_shutdown();
    const StatSet s = server.stats();
    std::cout << "vasim serve: shut down after " << s.count("serve.jobs.submitted")
              << " jobs (" << s.count("serve.jobs.completed") << " done, "
              << s.count("serve.jobs.cancelled") << " cancelled, "
              << s.count("serve.jobs.failed") << " failed, "
              << s.count("serve.jobs.rejected") << " rejected); cache "
              << s.count("serve.cache.hit") << " hits / " << s.count("serve.cache.miss")
              << " misses, queue peak " << s.scalar("serve.queue.peak") << "\n";
    if (args.has("profile")) print_profile_tables(hub);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

int cmd_loadgen(const Args& args) {
  if (!args.has("connect")) return usage();
  serve::LoadgenConfig lc;
  lc.endpoint = args.get("connect", "");
  lc.clients = std::strtoull(args.get("clients", "4").c_str(), nullptr, 10);
  lc.jobs_per_client = std::strtoull(args.get("jobs", "8").c_str(), nullptr, 10);
  lc.cells_per_job = std::strtoull(args.get("cells", "2").c_str(), nullptr, 10);
  lc.submit_interval_ms = std::strtod(args.get("interval", "5").c_str(), nullptr);
  lc.cancel_fraction = std::strtod(args.get("cancel-frac", "0").c_str(), nullptr);
  lc.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr, 10);
  lc.instructions = std::strtoull(args.get("instr", "0").c_str(), nullptr, 10);
  lc.warmup = std::strtoull(args.get("warmup", "0").c_str(), nullptr, 10);
  if (args.has("benches")) lc.benches = split_csv(args.get("benches", ""));
  if (args.has("schemes")) lc.schemes = split_csv(args.get("schemes", ""));
  if (args.has("vdds")) {
    lc.vdds.clear();
    for (const std::string& v : split_csv(args.get("vdds", ""))) {
      lc.vdds.push_back(std::strtod(v.c_str(), nullptr));
    }
  }
  if (lc.benches.empty() || lc.schemes.empty() || lc.vdds.empty()) {
    std::cerr << "loadgen needs non-empty --benches/--schemes/--vdds\n";
    return 2;
  }
  lc.out_json = args.get("json", "BENCH_serve.json");
  try {
    const serve::LoadgenReport rep = serve::run_loadgen(lc);
    std::cout << serve::loadgen_summary(rep);
    if (!lc.out_json.empty()) {
      if (!serve::write_loadgen_json(lc.out_json, lc, rep)) {
        std::cerr << "cannot write " << lc.out_json << "\n";
        return 2;
      }
      copy_to_results(lc.out_json);
      std::cout << "loadgen report written to " << lc.out_json << "\n";
    }
    if (args.has("shutdown")) {
      serve::Client c(serve::parse_endpoint(lc.endpoint));
      const std::string reply = c.request("{\"op\":\"shutdown\"}");
      std::cout << "shutdown requested: " << reply << "\n";
    }
    // The mix itself is the check: inconsistent checksums, failed jobs or a
    // drain timeout make the exit status visible to CI.
    return rep.checksums_consistent && !rep.timed_out && rep.jobs_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

int cmd_snap(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "info") {
    if (argc != 4 || std::string(argv[3]).rfind("--", 0) == 0) return usage();
    return cmd_snap_info(argv[3]);
  }
  if (sub == "save") {
    Args a;
    a.command = "snap-save";
    if (!parse_options(3, argc, argv, a)) return usage();
    return cmd_snap_save(a);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "snap") == 0) return cmd_snap(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "sweep-merge") == 0) return cmd_sweep_merge(argc, argv);
    const auto args = parse(argc, argv);
    if (!args) return usage();
    if (args->command == "list") return cmd_list();
    if (args->command == "run") return cmd_run(*args);
    if (args->command == "sweep") return cmd_sweep(*args);
    if (args->command == "record") return cmd_record(*args);
    if (args->command == "replay") return cmd_replay(*args);
    if (args->command == "serve") return cmd_serve(*args);
    if (args->command == "loadgen") return cmd_loadgen(*args);
    return usage();
  } catch (const std::invalid_argument& e) {
    // Config validation (validate_core_config, --kernel parsing) reports the
    // named constraint; anything else is a real bug and may terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
