# Empty compiler generated dependencies file for bench_inorder.
# This may be replaced when dependencies are built.
