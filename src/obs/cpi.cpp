#include "src/obs/cpi.hpp"

namespace vasim::obs {

std::string cpi_counter_name(CpiCause c) { return "cpi." + std::string(to_string(c)); }

u64 CpiStack::total() const {
  u64 t = 0;
  for (const u64 s : slots) t += s;
  return t;
}

double CpiStack::cpi_of(CpiCause c, int commit_width, u64 committed) const {
  if (commit_width <= 0 || committed == 0) return 0.0;
  return static_cast<double>((*this)[c]) /
         (static_cast<double>(commit_width) * static_cast<double>(committed));
}

CpiStack CpiStack::from_stats(const StatSet& stats) {
  CpiStack st;
  for (int i = 0; i < kNumCpiCauses; ++i) {
    const auto c = static_cast<CpiCause>(i);
    st[c] = stats.count(cpi_counter_name(c));
  }
  return st;
}

}  // namespace vasim::obs
