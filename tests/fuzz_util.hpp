// Shared seed management for the randomized test suites.
//
// Every fuzz-style suite (test_fuzz, test_program_fuzz, test_semantics,
// tools/check_probe) draws its seed list from here so one environment
// variable reproduces any failure:
//
//   VASIM_FUZZ_SEEDS=17,42   run exactly these seeds (reproduction)
//   VASIM_FUZZ_ITERS=200     widen the default range (long-fuzz CI job)
//
// Without either knob a suite runs its default contiguous range plus the
// checked-in corpus (tests/corpus/fuzz_seeds.txt): seeds that once exposed
// a bug stay in every future run.
#ifndef VASIM_TESTS_FUZZ_UTIL_HPP
#define VASIM_TESTS_FUZZ_UTIL_HPP

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/env.hpp"
#include "src/common/types.hpp"

namespace vasim::fuzzutil {

/// Absolute path of the seed corpus (resolved from this header's location,
/// same trick as the golden fixture).
inline std::string corpus_path() {
  std::string p(__FILE__);
  const std::size_t slash = p.find_last_of('/');
  return p.substr(0, slash) + "/corpus/fuzz_seeds.txt";
}

/// Seed list for the suite named `tag` ("config", "program", "probe").
/// Corpus lines are `seed`, `tag:seed`, or `# comment`; untagged seeds feed
/// every suite.
inline std::vector<u64> seeds(const std::string& tag, u64 base, u64 default_count) {
  std::vector<u64> out;
  const std::string explicit_seeds = env_str("VASIM_FUZZ_SEEDS", "");
  if (!explicit_seeds.empty()) {
    std::stringstream ss(explicit_seeds);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) out.push_back(std::stoull(item));
    }
    return out;
  }

  const u64 n = env_u64("VASIM_FUZZ_ITERS", default_count);
  out.reserve(static_cast<std::size_t>(n));
  for (u64 i = 0; i < n; ++i) out.push_back(base + i);

  std::ifstream f(corpus_path());
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      if (line.substr(0, colon) != tag) continue;
      line = line.substr(colon + 1);
    }
    try {
      const u64 s = std::stoull(line);
      if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
    } catch (...) {
      // Malformed corpus lines are ignored (the corpus is hand-edited).
    }
  }
  return out;
}

}  // namespace vasim::fuzzutil

#endif  // VASIM_TESTS_FUZZ_UTIL_HPP
