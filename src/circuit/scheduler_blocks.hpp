// Gate-level models of the issue-stage scheduler and the paper's Violation
// Tolerant Enhancements, used to regenerate Table 2 (area/power overhead of
// ABS/FFS/CDS over the Error-Padding baseline scheduler).
//
// The baseline scheduler (shared by EP and fault-free execution, Section
// 4.2) already contains wakeup CAM, age-based (timestamp) select and
// completion-countdown logic.  ABS/FFS add only the VTE bookkeeping (4-bit
// fault field per entry, FUSR, slot-freeze and broadcast-delay logic); CDS
// additionally instantiates the Criticality Detection Logic (Section 3.5.2).
#ifndef VASIM_CIRCUIT_SCHEDULER_BLOCKS_HPP
#define VASIM_CIRCUIT_SCHEDULER_BLOCKS_HPP

#include "src/circuit/builders.hpp"

namespace vasim::circuit {

/// Scheduler variants of Table 2.
enum class SchedulerVariant {
  kBaseline,  ///< EP / fault-free scheduler (wakeup + age select + countdown)
  kAbsFfs,    ///< + VTE fault field, FUSR, slot freeze, delayed broadcast
  kCds,       ///< + Criticality Detection Logic on top of kAbsFfs
};

/// Shape of the modeled scheduler (defaults follow Fabscalar Core-1).
struct SchedulerShape {
  int entries = 32;        ///< issue-queue entries
  int tag_bits = 7;        ///< physical-register tag width (96 regs)
  int broadcast_ports = 4; ///< result-tag broadcast buses (issue width)
  int grants = 4;          ///< select width
  int num_fus = 8;         ///< functional units tracked by the FUSR
  int timestamp_bits = 6;  ///< ABS mod-64 timestamp (Section 3.5)
  int countdown_bits = 4;  ///< completion countdown per broadcast port
  int criticality_threshold_bits = 4;  ///< CT comparator width (CT = 8)
};

/// Wakeup CAM: per entry, two operand tags compared against every broadcast
/// port; a match on any port readies the operand.
/// Flops: 2 tag fields + 2 ready bits per entry.
Component build_wakeup_cam(const SchedulerShape& shape = {});

/// Age-based selection: request gating by operand-ready, banked 4-of-N
/// priority select, plus per-entry timestamp storage and the oldest-first
/// compare chain.
Component build_age_select(const SchedulerShape& shape = {});

/// Completion-countdown logic: per broadcast port a countdown register and
/// decrementer that fires the tag broadcast in the completion cycle
/// (Section 3.2.2).
Component build_countdown(const SchedulerShape& shape = {});

/// Issue-queue payload storage: destination tag, opcode and control bits per
/// entry plus the read-out muxing towards the issue slots.  Part of the
/// baseline scheduler all variants share.
Component build_payload(const SchedulerShape& shape = {});

/// VTE additions shared by ABS and FFS (Sections 3.2.1-3.2.3): per-entry
/// 4-bit fault field, FUSR with per-FU freeze gating, issue-slot freeze
/// registers, +1 countdown adjust muxes.
Component build_vte_addon(const SchedulerShape& shape = {});

/// Criticality Detection Logic (Section 3.5.2): popcount of the per-entry
/// tag-match lines, compared against the criticality threshold; per-entry
/// criticality bit storage.
Component build_cdl(const SchedulerShape& shape = {});

/// Full scheduler assembly for a variant: the union of its sub-blocks,
/// reported as one Component for area/power roll-up.  (Sub-blocks remain
/// separately buildable for unit tests.)
struct SchedulerAssembly {
  SchedulerVariant variant;
  std::vector<Component> blocks;
};
SchedulerAssembly build_scheduler(SchedulerVariant variant, const SchedulerShape& shape = {});

}  // namespace vasim::circuit

#endif  // VASIM_CIRCUIT_SCHEDULER_BLOCKS_HPP
