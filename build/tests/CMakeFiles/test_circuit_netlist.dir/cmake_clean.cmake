file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_netlist.dir/test_circuit_netlist.cpp.o"
  "CMakeFiles/test_circuit_netlist.dir/test_circuit_netlist.cpp.o.d"
  "test_circuit_netlist"
  "test_circuit_netlist.pdb"
  "test_circuit_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
