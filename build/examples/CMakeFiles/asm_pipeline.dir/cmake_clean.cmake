file(REMOVE_RECURSE
  "CMakeFiles/asm_pipeline.dir/asm_pipeline.cpp.o"
  "CMakeFiles/asm_pipeline.dir/asm_pipeline.cpp.o.d"
  "asm_pipeline"
  "asm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
