// Functional-unit pool with the paper's FUSR semantics.
//
// Each unit tracks the cycle through which it is busy.  Pipelined units are
// normally free every cycle; the Violation Tolerant Enhancement turns a
// unit's FUSR bit off for one cycle behind a predicted-faulty instruction
// (Section 3.3.3), which here is an extra-busy reservation.
#ifndef VASIM_CPU_FU_POOL_HPP
#define VASIM_CPU_FU_POOL_HPP

#include <array>
#include <utility>
#include <vector>

#include "src/common/types.hpp"
#include "src/cpu/config.hpp"
#include "src/isa/dyninst.hpp"
#include "src/obs/registry.hpp"
#include "src/snap/io.hpp"

namespace vasim::cpu {

/// Functional unit classes.
enum class FuKind : u8 { kSimpleAlu, kComplexAlu, kBranch, kLoadPort, kStorePort };

/// FU kind an operation class issues to.
FuKind fu_kind_for(isa::OpClass op);

/// The unit pool.
class FuPool {
 public:
  /// When `reg` is given the pool registers (and bumps on every successful
  /// allocate) the ev.fu.{alu,mul,div,branch,mem} counters; without one it
  /// counts nothing (standalone/test use).
  explicit FuPool(const CoreConfig& cfg, obs::Registry* reg = nullptr);

  /// Tries to reserve a unit of the right kind for `op` issuing at `cycle`.
  /// `occupy_extra` keeps the unit busy one extra cycle after the operation
  /// (the VTE slot freeze).  Returns the unit id, or -1 when none is free.
  int allocate(isa::OpClass op, Cycle cycle, Cycle latency, bool occupy_extra);

  /// True when some unit of the kind needed by `op` can accept at `cycle`.
  [[nodiscard]] bool can_accept(isa::OpClass op, Cycle cycle) const;

  /// Shifts every reservation by `delta` (global-stall support).
  void shift_time(Cycle delta);

  [[nodiscard]] int unit_count() const { return static_cast<int>(units_.size()); }
  [[nodiscard]] FuKind kind_of(int unit) const { return units_[static_cast<std::size_t>(unit)].kind; }
  /// First cycle `unit` can accept a new operation.
  [[nodiscard]] Cycle next_free(int unit) const {
    return units_[static_cast<std::size_t>(unit)].next_free;
  }
  /// Contiguous [first, last) unit-id range owned by `kind`.
  [[nodiscard]] std::pair<u32, u32> kind_range(FuKind kind) const {
    const auto k = static_cast<std::size_t>(kind);
    return {kind_begin_[k], kind_end_[k]};
  }

  /// Serializes per-unit next_free reservations (the only mutable state;
  /// kind layout is config-derived).
  void save_state(snap::Writer& w) const {
    w.put_u32(static_cast<u32>(units_.size()));
    for (const Unit& u : units_) w.put_u64(u.next_free);
  }
  void restore_state(snap::Reader& r) {
    if (r.get_u32() != units_.size()) throw snap::SnapshotError("fu pool size mismatch");
    for (Unit& u : units_) u.next_free = r.get_u64();
  }

 private:
  struct Unit {
    FuKind kind;
    bool pipelined;
    Cycle next_free = 0;  ///< first cycle the unit can accept a new op
  };

  /// Whether `op` on this unit occupies it for the full latency
  /// (unpipelined) or a single issue cycle (pipelined).
  [[nodiscard]] static bool occupies_fully(isa::OpClass op, const Unit& u);

  void count_allocation(FuKind kind, isa::OpClass op);

  // Units are constructed grouped by kind, so each kind owns one contiguous
  // index range; allocate/can_accept scan only that range (same unit ids as
  // a full filtered scan, fewer touched cache lines).
  static constexpr std::size_t kNumKinds = 5;
  std::array<u32, kNumKinds> kind_begin_{};
  std::array<u32, kNumKinds> kind_end_{};

  std::vector<Unit> units_;
  bool counting_ = false;
  obs::Counter c_alu_, c_mul_, c_div_, c_branch_, c_mem_;
};

}  // namespace vasim::cpu

#endif  // VASIM_CPU_FU_POOL_HPP
