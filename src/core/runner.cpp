#include "src/core/runner.hpp"

#include "src/workload/trace_generator.hpp"

namespace vasim::core {

Overheads overhead_vs(const RunResult& base, const RunResult& x) {
  Overheads o;
  if (base.ipc > 0.0 && x.ipc > 0.0) o.perf_pct = (base.ipc / x.ipc - 1.0) * 100.0;
  if (base.energy.edp > 0.0) o.ed_pct = (x.energy.edp / base.energy.edp - 1.0) * 100.0;
  return o;
}

RunResult ExperimentRunner::run(const workload::BenchmarkProfile& profile,
                                const cpu::SchemeConfig& scheme, double vdd) const {
  workload::TraceGenerator gen(profile);

  timing::PathModelConfig path_cfg;
  path_cfg.seed = profile.seed;
  path_cfg.p_faulty_high = profile.fr_high_pct / 100.0 * profile.fr_calib_high;
  path_cfg.p_faulty_low = profile.fr_low_pct / 100.0 * profile.fr_calib_low;
  const timing::FaultModel fault_model(path_cfg, vdd);

  TimingErrorPredictor tep(cfg_.tep, &fault_model.environment());
  MostRecentEntryPredictor mre(cfg_.tep.entries);
  TimingViolationPredictor tvp(cfg_.tep.entries);
  cpu::FaultPredictor* predictor = nullptr;
  if (scheme.use_predictor) {
    switch (cfg_.predictor) {
      case PredictorKind::kTep: predictor = &tep; break;
      case PredictorKind::kMre: predictor = &mre; break;
      case PredictorKind::kTvp: predictor = &tvp; break;
    }
  }

  cpu::Pipeline pipe(cfg_.core, scheme, &gen, &fault_model, predictor);
  cpu::PipelineResult pr = pipe.run(cfg_.instructions, cfg_.warmup);

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = scheme.name;
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const double actual = static_cast<double>(pr.stats.count("fault.actual"));
  const double committed_faulty = static_cast<double>(pr.stats.count("fault.committed_faulty"));
  r.fault_rate_pct =
      pr.committed == 0 ? 0.0 : committed_faulty / static_cast<double>(pr.committed) * 100.0;
  r.replays = static_cast<double>(pr.stats.count("fault.replays"));
  r.predictor_accuracy =
      actual > 0.0 ? static_cast<double>(pr.stats.count("fault.handled")) / actual : 0.0;
  const EnergyModel em(cfg_.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  return r;
}

RunResult ExperimentRunner::run_fault_free(const workload::BenchmarkProfile& profile,
                                           double vdd) const {
  workload::TraceGenerator gen(profile);
  cpu::Pipeline pipe(cfg_.core, cpu::scheme_fault_free(), &gen, nullptr, nullptr);
  cpu::PipelineResult pr = pipe.run(cfg_.instructions, cfg_.warmup);

  RunResult r;
  r.benchmark = profile.name;
  r.scheme = "fault-free";
  r.vdd = vdd;
  r.committed = pr.committed;
  r.cycles = pr.cycles;
  r.ipc = pr.ipc();
  const EnergyModel em(cfg_.energy);
  r.energy = em.compute(pr.stats, vdd);
  r.cpi = pr.cpi;
  r.stats = std::move(pr.stats);
  return r;
}

const std::vector<cpu::SchemeConfig>& comparative_schemes() {
  static const std::vector<cpu::SchemeConfig> schemes = {
      cpu::scheme_razor(), cpu::scheme_error_padding(), cpu::scheme_abs(),
      cpu::scheme_ffs(), cpu::scheme_cds()};
  return schemes;
}

std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name) {
  if (name == "fault-free") return cpu::scheme_fault_free();
  for (const cpu::SchemeConfig& s : comparative_schemes()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace vasim::core
