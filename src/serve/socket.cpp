#include "src/serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace vasim::serve {
namespace {

[[noreturn]] void fail(const std::string& op) {
  throw SocketError(op + ": " + std::strerror(errno));
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

int connect_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      throw SocketError("unix socket path too long: " + ep.path);
    }
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail("connect " + ep.path);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("connect 127.0.0.1:" + std::to_string(ep.port));
  }
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw SocketError("empty unix socket path in '" + spec + "'");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string port = spec.substr(4);
    if (port.empty() || port.find_first_not_of("0123456789") != std::string::npos) {
      throw SocketError("bad tcp port in '" + spec + "'");
    }
    const long p = std::strtol(port.c_str(), nullptr, 10);
    if (p < 0 || p > 65535) throw SocketError("tcp port out of range in '" + spec + "'");
    ep.port = static_cast<int>(p);
    return ep;
  }
  throw SocketError("endpoint must be unix:PATH or tcp:PORT, got '" + spec + "'");
}

struct SocketServer::Impl {
  Server& server;
  Endpoint endpoint;
  FrameLimits limits;
  int listen_fd = -1;
  int port = 0;

  std::atomic<bool> stop{false};
  std::atomic<bool> shutdown_req{false};
  std::mutex mu;
  std::condition_variable shutdown_cv;
  std::thread accept_thread;
  std::vector<std::thread> conn_threads;
  std::vector<int> conn_fds;
  bool stopped = false;

  Impl(Server& s, const Endpoint& ep, FrameLimits lim) : server(s), endpoint(ep), limits(lim) {}

  void pump_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    bool close_now = false;
    while (!close_now && !stop.load(std::memory_order_acquire)) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // transport error: nothing sensible left to reply
      }
      if (n == 0) break;  // EOF; any partial frame in `buffer` is dropped
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
           nl = buffer.find('\n', start)) {
        std::string_view line(buffer.data() + start, nl - start);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        start = nl + 1;
        if (line.size() > limits.max_frame_bytes) {
          try {
            send_all(fd, frame_too_big_reply(line.size()));
          } catch (const SocketError&) {
          }
          close_now = true;
          break;
        }
        bool want_shutdown = false;
        const std::string reply = handle_frame(server, line, &want_shutdown);
        try {
          send_all(fd, reply + "\n");
        } catch (const SocketError&) {
          close_now = true;
          break;
        }
        if (want_shutdown) {
          shutdown_req.store(true, std::memory_order_release);
          shutdown_cv.notify_all();
          close_now = true;
          break;
        }
      }
      buffer.erase(0, start);
      // A frame that exceeds the cap cannot be resynchronized: reject and
      // close instead of buffering unboundedly while hunting the newline.
      if (!close_now && buffer.size() > limits.max_frame_bytes) {
        try {
          send_all(fd, frame_too_big_reply(buffer.size()));
        } catch (const SocketError&) {
        }
        close_now = true;
      }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }

  [[nodiscard]] std::string frame_too_big_reply(std::size_t size) const {
    return error_reply("oversized_frame",
                       "frame of " + std::to_string(size) + " bytes exceeds the " +
                           std::to_string(limits.max_frame_bytes) + "-byte limit") +
           "\n";
  }

  void accept_loop() {
    while (!stop.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (r <= 0) continue;  // timeout or EINTR: re-check the stop flag
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(mu);
      if (stop.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      conn_fds.push_back(fd);
      conn_threads.emplace_back([this, fd] { pump_connection(fd); });
    }
  }
};

SocketServer::SocketServer(Server& server, const Endpoint& endpoint, FrameLimits limits)
    : impl_(std::make_unique<Impl>(server, endpoint, limits)) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof addr.sun_path) {
      throw SocketError("unix socket path too long: " + endpoint.path);
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(), endpoint.path.size() + 1);
    ::unlink(endpoint.path.c_str());  // a stale socket file would fail the bind
    if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      fail("bind " + endpoint.path);
    }
  } else {
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) fail("socket");
    const int one = 1;
    ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
    if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      fail("bind 127.0.0.1:" + std::to_string(endpoint.port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      impl_->port = ntohs(bound.sin_port);
    }
  }
  if (::listen(impl_->listen_fd, 64) != 0) fail("listen");
}

SocketServer::~SocketServer() {
  stop();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->endpoint.kind == Endpoint::Kind::kUnix) ::unlink(impl_->endpoint.path.c_str());
}

void SocketServer::start() {
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void SocketServer::serve_until_shutdown() {
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->shutdown_cv.wait(
        lock, [this] { return impl_->shutdown_req.load(std::memory_order_acquire); });
  }
  impl_->server.shutdown();
  stop();
}

void SocketServer::stop() {
  impl_->stop.store(true, std::memory_order_release);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const int fd : impl_->conn_fds) ::shutdown(fd, SHUT_RDWR);
    impl_->conn_fds.clear();
    threads.swap(impl_->conn_threads);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

int SocketServer::resolved_port() const { return impl_->port; }

bool SocketServer::shutdown_requested() const {
  return impl_->shutdown_req.load(std::memory_order_acquire);
}

Client::Client(const Endpoint& endpoint) : fd_(connect_endpoint(endpoint)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

std::string Client::request(const std::string& line) {
  send_all(fd_, line + "\n");
  return read_line();
}

void Client::send_raw(const std::string& bytes) { send_all(fd_, bytes); }

std::string Client::read_line() {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    if (n == 0) throw SocketError("connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace vasim::serve
