// Cross-validation tests: the gate-level ALU against the ISA executor's
// arithmetic, and netlist invariants over every builder (the properties a
// synthesis flow would rely on when consuming the Verilog export).
#include <gtest/gtest.h>

#include <functional>

#include "src/circuit/gatesim.hpp"
#include "src/circuit/scheduler_blocks.hpp"
#include "src/circuit/verilog.hpp"
#include "src/common/rng.hpp"
#include "src/isa/assembler.hpp"
#include "src/isa/executor.hpp"

namespace vasim::circuit {
namespace {

TEST(CrossValidation, GateLevelAluAgreesWithIsaExecutor) {
  // The same operation computed two ways: through the mini-ISA functional
  // core and through the synthesized 16-bit ALU netlist.
  const Component alu = build_simple_alu(16);
  GateSim sim(&alu.netlist);
  Pcg32 rng(99);
  const struct {
    AluOp gate_op;
    const char* mnemonic;
  } ops[] = {{AluOp::kAdd, "add"}, {AluOp::kSub, "sub"}, {AluOp::kAnd, "and"},
             {AluOp::kOr, "or"},   {AluOp::kXor, "xor"}};
  for (const auto& op : ops) {
    for (int t = 0; t < 20; ++t) {
      const u64 a = rng.next_u64() & 0xFFFF;
      const u64 b = rng.next_u64() & 0xFFFF;
      // ISA path.
      const isa::Program prog =
          isa::assemble(std::string(op.mnemonic) + " r3, r1, r2\nhalt\n");
      isa::FunctionalCore core(&prog);
      core.set_reg(1, a);
      core.set_reg(2, b);
      isa::DynInst d;
      while (core.next(d)) {
      }
      // Gate path.
      std::vector<u8> in;
      GateSim::pack_bits(a, 16, in);
      GateSim::pack_bits(b, 16, in);
      GateSim::pack_bits(static_cast<u64>(op.gate_op), 3, in);
      sim.evaluate(in);
      const Bus result(alu.outputs.begin(), alu.outputs.begin() + 16);
      EXPECT_EQ(sim.read_bus(result), core.reg(3) & 0xFFFF)
          << op.mnemonic << " a=" << a << " b=" << b;
    }
  }
}

/// Builders under test for the structural-invariant sweep.
using BuilderFn = std::function<Component()>;

class BuilderInvariants : public ::testing::TestWithParam<std::pair<const char*, BuilderFn>> {};

TEST_P(BuilderInvariants, NetlistIsWellFormedAndExportable) {
  const Component c = GetParam().second();
  const Netlist& n = c.netlist;
  // 1. IO bookkeeping matches the netlist.
  EXPECT_EQ(static_cast<int>(c.inputs.size()), n.num_inputs());
  EXPECT_EQ(c.outputs.size(), n.outputs().size());
  for (const SigId s : n.outputs()) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, n.num_signals());
  }
  // 2. Topological ordering: every gate reads strictly earlier signals.
  for (SigId i = 0; i < n.num_signals(); ++i) {
    const Gate& g = n.gate(i);
    const int fanin = cell_info(g.kind).fanin;
    for (int k = 0; k < fanin; ++k) {
      EXPECT_GE(g.in[k], 0);
      EXPECT_LT(g.in[k], i);
    }
  }
  // 3. Evaluation is deterministic and total.
  GateSim sim(&n);
  std::vector<u8> zeros(static_cast<std::size_t>(n.num_inputs()), 0);
  const std::vector<u8> v1 = sim.evaluate(zeros);
  const std::vector<u8> v2 = sim.evaluate(zeros);
  EXPECT_EQ(v1, v2);
  // 4. The Verilog export covers every signal exactly once.
  const std::string verilog = to_verilog(c, "dut");
  std::size_t assigns = 0;
  for (std::size_t pos = verilog.find("assign"); pos != std::string::npos;
       pos = verilog.find("assign", pos + 1)) {
    ++assigns;
  }
  EXPECT_EQ(assigns,
            static_cast<std::size_t>(n.num_signals() - n.num_inputs()) + c.outputs.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, BuilderInvariants,
    ::testing::Values(
        std::make_pair("alu32", BuilderFn([] { return build_simple_alu(32); })),
        std::make_pair("alu8", BuilderFn([] { return build_simple_alu(8); })),
        std::make_pair("issue_select", BuilderFn([] { return build_issue_select(32, 4); })),
        std::make_pair("agen", BuilderFn([] { return build_agen(32, 16); })),
        std::make_pair("forward_check", BuilderFn([] { return build_forward_check(4, 4, 7); })),
        std::make_pair("multiplier", BuilderFn([] { return build_array_multiplier(8); })),
        std::make_pair("lsq_cam", BuilderFn([] { return build_lsq_cam(24, 12); })),
        std::make_pair("wakeup_cam", BuilderFn([] { return build_wakeup_cam({}); })),
        std::make_pair("age_select", BuilderFn([] { return build_age_select({}); })),
        std::make_pair("countdown", BuilderFn([] { return build_countdown({}); })),
        std::make_pair("payload", BuilderFn([] { return build_payload({}); })),
        std::make_pair("vte_addon", BuilderFn([] { return build_vte_addon({}); })),
        std::make_pair("cdl", BuilderFn([] { return build_cdl({}); }))),
    [](const ::testing::TestParamInfo<std::pair<const char*, BuilderFn>>& info) {
      return info.param.first;
    });

}  // namespace
}  // namespace vasim::circuit
