// Experiment runner: wires a workload profile, a supply point, a scheme and
// the pipeline together, and computes the overhead metrics the paper's
// tables and figures report.
#ifndef VASIM_CORE_RUNNER_HPP
#define VASIM_CORE_RUNNER_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/adapt/clock.hpp"
#include "src/adapt/dvfs.hpp"
#include "src/core/energy.hpp"
#include "src/core/predictors.hpp"
#include "src/core/tep.hpp"
#include "src/cpu/pipeline.hpp"
#include "src/workload/profiles.hpp"

namespace vasim::core {

/// Adaptive-clock outcome of one run (absent for static runs).  The scalar
/// inputs (dvfs.wall_units and friends) ride RunResult::stats and therefore
/// fold into sweep checksums; this block adds the derived summary and the
/// controller trajectory for reports.
struct DvfsSummary {
  std::string policy;            ///< "reactive" / "predictive"
  u64 epochs = 0;                ///< controller steps over the whole run
  u64 wall_units = 0;            ///< measured-window permille-cycles
  u32 period_final = 0;          ///< permille, at run end
  u32 period_lo = 0;             ///< permille, run-wide extremes
  u32 period_hi = 0;
  double avg_period_permille = 0.0;  ///< measured-window wall_units / cycles
  /// Measured-window committed * 1000 / wall_units: instructions per nominal
  /// cycle of wall time.  Equals IPC when the period never moves.
  double throughput = 0.0;
  /// Whole-run controller trajectory (warmup included).  Not folded into
  /// sweep_checksum (diagnostic series; the scalars above come from stats).
  std::vector<adapt::TrajectoryPoint> trajectory;
};

/// One simulation's outcome.
struct RunResult {
  std::string benchmark;
  std::string scheme;
  double vdd = timing::SupplyPoints::kNominal;
  u64 committed = 0;
  Cycle cycles = 0;
  double ipc = 0.0;
  double fault_rate_pct = 0.0;      ///< actual faults / committed * 100
  double replays = 0.0;
  double predictor_accuracy = 0.0;  ///< handled / actual (0 when no faults)
  EnergyReport energy;
  /// Per-cause commit-slot attribution of the measured window; the
  /// invariant cpi.total() == cycles * commit_width always holds.
  obs::CpiStack cpi;
  StatSet stats;
  /// Cycle timestamps sampled at every RunnerConfig::commit_trail_stride-th
  /// commit (whole run, warmup included).  Lets a diff pinpoint the first
  /// diverging execution window instead of just the final totals.  Not
  /// folded into sweep_checksum (diagnostic, not an identity).
  std::vector<Cycle> commit_trail;
  /// Invariant evaluations the semantics checker performed (0 when the
  /// checker was not attached); a run that "passes" with 0 checks is blind.
  u64 checker_checks = 0;
  /// Interval-sampled counter timeline (null unless
  /// RunnerConfig::timeline_interval was set).  Warm-started jobs begin
  /// their timeline at the fork point.  Not folded into sweep_checksum
  /// (diagnostic series, not an identity).
  std::shared_ptr<const obs::Timeline> timeline;
  /// Controller summary + trajectory for adaptive-clock runs; nullopt for
  /// static runs (whose results are bit-identical to pre-dvfs builds).
  std::optional<DvfsSummary> dvfs;
};

/// (performance %, energy-delay %) overhead tuple, the format of Table 1.
struct Overheads {
  double perf_pct = 0.0;
  double ed_pct = 0.0;
};

/// Overhead of `x` relative to `base` (same workload and instruction count).
Overheads overhead_vs(const RunResult& base, const RunResult& x);

/// Which fault predictor drives the prediction-based schemes.
enum class PredictorKind {
  kTep,  ///< the paper's combined design (Section 2.1.1)
  kMre,  ///< Xin & Joseph's Most-Recent-Entry predictor [13]
  kTvp,  ///< Roy & Chakraborty's Timing Violation Predictor [12]
};

/// Runner configuration.
struct RunnerConfig {
  u64 instructions = 200'000;  ///< measured committed instructions per run
  u64 warmup = 150'000;        ///< committed instructions before measurement
  cpu::CoreConfig core;
  TepConfig tep;
  PredictorKind predictor = PredictorKind::kTep;
  EnergyParams energy;
  /// Attach a SemanticsChecker to every run and throw (with the checker's
  /// report) if any paper invariant is violated.  Requires hook-enabled
  /// builds (the default); attach fails loudly when compiled out.
  bool check_semantics = false;
  /// When non-zero, record the cycle at every N-th commit into
  /// RunResult::commit_trail (capped; see runner.cpp).
  u64 commit_trail_stride = 0;
  /// When non-zero, write a snapshot to `<snapshot_path><committed>.vsnap`
  /// at every `snapshot_interval`-th committed instruction (first cycle
  /// boundary at or past each multiple), in addition to the normal run.
  u64 snapshot_interval = 0;
  std::string snapshot_path = "snap-";
  /// When non-zero, attach an obs::Timeline sampling every N commits; the
  /// result lands in RunResult::timeline.  Zero (the default) leaves the
  /// run bitwise-identical to a build without the feature.
  u64 timeline_interval = 0;
  /// Live commits/s + ETA line on stderr while the run executes (the same
  /// printer the sweep engine uses).
  bool progress = false;
  /// When set, every run attaches a wall-time self-profiler and merges its
  /// snapshot here at result assembly.  Non-owning; must outlive the runs.
  obs::ProfilerHub* profiler_hub = nullptr;
  /// Adaptive clocking (src/adapt/, docs/adaptive.md).  kStatic (default)
  /// attaches nothing and is bitwise-identical to pre-dvfs behavior.
  /// Adaptive policies apply only to scheme runs (a fault model must be
  /// present to arbitrate violations); fault-free baselines stay static.
  /// The whole struct folds into the warmup key, so snapshots and serve
  /// cache entries never cross policies.
  adapt::DvfsConfig dvfs;
};

// Defined in src/core/snapshot.hpp; callers of the snapshot API include it.
class RunSnapshot;
struct CaptureResult;

/// Executes simulations.  Stateless between runs; deterministic.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const RunnerConfig& cfg = {}) : cfg_(cfg) {}

  /// Runs one (benchmark, scheme, supply) combination.
  [[nodiscard]] RunResult run(const workload::BenchmarkProfile& profile,
                              const cpu::SchemeConfig& scheme, double vdd) const;

  /// Fault-free baseline at the same supply (faults disabled, age policy).
  [[nodiscard]] RunResult run_fault_free(const workload::BenchmarkProfile& profile,
                                         double vdd) const;

  // ---- snapshot / warm-start API (src/core/snapshot.hpp) -------------------
  // `scheme == nullopt` selects the fault-free-baseline path, exactly like
  // SweepJob::scheme.

  /// Simulates up to the first cycle boundary where at least `at_committed`
  /// instructions have committed and returns the snapshot (the run is then
  /// abandoned -- this is the cheap warmup-capture path).  The capture point
  /// is quantized to cycle boundaries, so resuming is bit-identical to
  /// having never paused.  Throws if the semantics checker (when enabled)
  /// has already failed at the capture point.
  [[nodiscard]] RunSnapshot capture(const workload::BenchmarkProfile& profile,
                                    const std::optional<cpu::SchemeConfig>& scheme, double vdd,
                                    u64 at_committed) const;

  /// Runs to completion like run()/run_fault_free, additionally capturing a
  /// snapshot at `at_committed` on the way through.
  [[nodiscard]] CaptureResult run_and_capture(const workload::BenchmarkProfile& profile,
                                              const std::optional<cpu::SchemeConfig>& scheme,
                                              double vdd, u64 at_committed) const;

  /// Resumes a snapshot and runs the measurement to completion.  Workload,
  /// scheme and supply come from the snapshot's META; measurement-side
  /// settings (`instructions`, EnergyParams) come from this runner's config,
  /// whose warmup-relevant fields must match the snapshot's warmup key
  /// (snap::SnapshotError otherwise).  `vdd_override` is only legal for
  /// fault-free snapshots, where the supply affects energy accounting but
  /// not execution (warm-start sweep sharing across supplies).
  [[nodiscard]] RunResult run_from(const RunSnapshot& snapshot,
                                   std::optional<double> vdd_override = std::nullopt) const;

  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }

 private:
  RunnerConfig cfg_;
};

/// All comparative schemes of Section 5 in presentation order.  Built once
/// and cached (the schemes are immutable configuration); callers needing a
/// mutated variant copy the element.
const std::vector<cpu::SchemeConfig>& comparative_schemes();

/// Scheme lookup by table name ("fault-free", "razor", "ep", "abs", "ffs",
/// "cds"); nullopt for unknown names.
std::optional<cpu::SchemeConfig> scheme_by_name(const std::string& name);

}  // namespace vasim::core

#endif  // VASIM_CORE_RUNNER_HPP
