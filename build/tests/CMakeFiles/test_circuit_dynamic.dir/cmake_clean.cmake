file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_dynamic.dir/test_circuit_dynamic.cpp.o"
  "CMakeFiles/test_circuit_dynamic.dir/test_circuit_dynamic.cpp.o.d"
  "test_circuit_dynamic"
  "test_circuit_dynamic.pdb"
  "test_circuit_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
