#include "src/cpu/inorder.hpp"

#include <algorithm>

namespace vasim::cpu {

InOrderPipeline::InOrderPipeline(const InOrderConfig& cfg, const SchemeConfig& scheme,
                                 isa::InstructionSource* source,
                                 const timing::FaultModel* fault_model,
                                 FaultPredictor* predictor)
    : cfg_(cfg), scheme_(scheme), source_(source), fault_model_(fault_model),
      predictor_(predictor), memory_(cfg.memory), bpred_(cfg.memory) {}

bool InOrderPipeline::step_one() {
  isa::DynInst di;
  if (!source_->next(di)) return false;

  // Front end: I-cache and redirect bubbles gate the earliest issue.
  const Cycle il = memory_.ifetch_latency(di.pc);
  if (il > cfg_.memory.l1i.latency) fetch_ready_ += il - cfg_.memory.l1i.latency;
  stats_.inc("ev.fetch");

  Cycle issue = std::max(now_ + 1, fetch_ready_);
  const auto ready = [&](int r) { return r == kNoReg ? 0 : reg_ready_[r]; };
  issue = std::max({issue, ready(di.src1), ready(di.src2)});

  // Prediction at decode.
  FaultPrediction pred;
  const bool faults_on = fault_model_ != nullptr && fault_model_->enabled();
  if (scheme_.use_predictor && predictor_ != nullptr && faults_on) {
    pred = predictor_->predict(di.pc, bpred_.history(), issue);
  }

  // Execution latency.
  Cycle lat = 1;
  switch (di.op) {
    case isa::OpClass::kIntMul: lat = cfg_.mul_latency; break;
    case isa::OpClass::kIntDiv: lat = cfg_.div_latency; break;
    case isa::OpClass::kLoad:
      lat = 1 + memory_.load_latency(di.mem_addr);
      stats_.inc("ev.dcache_read");
      break;
    case isa::OpClass::kStore:
      memory_.store_commit(di.mem_addr);
      stats_.inc("ev.dcache_write");
      break;
    default: break;
  }

  // Timing faults (Section 2.2's in-order handling degenerates to per-
  // instruction padding: with no scheduling freedom, every handled fault
  // stalls the machine for its extra cycle).
  if (faults_on) {
    const timing::FaultDecision d = fault_model_->query(
        di.pc, isa::is_mem(di.op) ? timing::FaultClass::kMemLike : timing::FaultClass::kAluLike,
        issue);
    if (d.faulty) {
      stats_.inc("fault.actual");
      const bool covered =
          pred.predicted && pred.stage == d.stage && (scheme_.vte || scheme_.error_padding);
      if (covered) {
        stats_.inc("fault.handled");
        lat += 1;  // padded stage: +1 that everything behind absorbs
      } else {
        stats_.inc("fault.replays");
        issue += scheme_.micro_stall_cycles;  // in-place replay holds the pipe
      }
      if (predictor_ != nullptr && scheme_.use_predictor) {
        predictor_->train(di.pc, bpred_.history(), true, d.stage);
      }
    } else if (pred.predicted) {
      stats_.inc("fault.false_positive");
      lat += 1;  // padding applied on the false alarm too
      if (predictor_ != nullptr && scheme_.use_predictor) {
        predictor_->train(di.pc, bpred_.history(), false, pred.stage);
      }
    }
  }

  // Branch resolution.
  if (di.op == isa::OpClass::kBranch) {
    const BranchPrediction bp = bpred_.predict(di.pc);
    const bool mispred = bp.taken != di.taken ||
                         (di.taken && (!bp.target_known || bp.target != di.next_pc));
    bpred_.update(di.pc, di.taken, di.next_pc);
    if (mispred) {
      stats_.inc("branch.mispredict");
      fetch_ready_ = issue + lat + static_cast<Cycle>(cfg_.frontend_depth);
    }
    stats_.inc("ev.fu.branch");
  } else {
    stats_.inc(di.op == isa::OpClass::kLoad || di.op == isa::OpClass::kStore ? "ev.fu.mem"
                                                                             : "ev.fu.alu");
  }

  if (di.dst != kNoReg) reg_ready_[di.dst] = issue + lat;
  now_ = issue;
  ++committed_;
  stats_.inc("ev.commit");
  return true;
}

PipelineResult InOrderPipeline::run(u64 max_committed, u64 warmup_committed) {
  const auto note_timeline = [&] {
    if (timeline_ != nullptr && committed_ >= timeline_next_) {
      timeline_->sample(now_, committed_);
      timeline_next_ = (committed_ / timeline_interval_ + 1) * timeline_interval_;
    }
  };
  while (committed_ < warmup_committed && step_one()) {
    note_timeline();
  }
  const StatSet base = stats_;
  const u64 base_committed = committed_;
  const Cycle base_cycles = now_;
  if (timeline_ != nullptr) timeline_->mark_measurement(now_, committed_);

  const u64 target = warmup_committed + max_committed;
  while (committed_ < target && step_one()) {
    note_timeline();
  }
  if (timeline_ != nullptr) timeline_->finalize(now_, committed_);

  PipelineResult r;
  r.committed = committed_ - base_committed;
  r.cycles = now_ - base_cycles;
  r.stats = stats_.diff(base);
  memory_.export_stats(r.stats);
  r.stats.inc("cycles", r.cycles);
  return r;
}

void InOrderPipeline::save_state(snap::Writer& w) const {
  w.put_u64(now_);
  w.put_u64(fetch_ready_);
  for (int a = 0; a < isa::kNumArchRegs; ++a) w.put_u64(reg_ready_[a]);
  w.put_u64(committed_);
  snap::put_statset(w, stats_);
  memory_.save_state(w);
  bpred_.save_state(w);
}

void InOrderPipeline::restore_state(snap::Reader& r) {
  now_ = r.get_u64();
  fetch_ready_ = r.get_u64();
  for (int a = 0; a < isa::kNumArchRegs; ++a) reg_ready_[a] = r.get_u64();
  committed_ = r.get_u64();
  stats_ = snap::get_statset(r);
  memory_.restore_state(r);
  bpred_.restore_state(r);
}

}  // namespace vasim::cpu
