file(REMOVE_RECURSE
  "CMakeFiles/vasim_core.dir/energy.cpp.o"
  "CMakeFiles/vasim_core.dir/energy.cpp.o.d"
  "CMakeFiles/vasim_core.dir/predictors.cpp.o"
  "CMakeFiles/vasim_core.dir/predictors.cpp.o.d"
  "CMakeFiles/vasim_core.dir/runner.cpp.o"
  "CMakeFiles/vasim_core.dir/runner.cpp.o.d"
  "CMakeFiles/vasim_core.dir/tep.cpp.o"
  "CMakeFiles/vasim_core.dir/tep.cpp.o.d"
  "libvasim_core.a"
  "libvasim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
