// Static program representation for the mini RISC ISA.
//
// A register machine with 32 general-purpose 64-bit registers (r0 is
// hard-wired zero), flat byte-addressed memory, and PC-relative branches.
// PCs advance by 4 per instruction.
#ifndef VASIM_ISA_PROGRAM_HPP
#define VASIM_ISA_PROGRAM_HPP

#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/isa/dyninst.hpp"

namespace vasim::isa {

inline constexpr int kNumArchRegs = 32;
inline constexpr Pc kTextBase = 0x1000;
inline constexpr int kInstrBytes = 4;

/// Opcodes of the mini ISA.
enum class Opcode : u8 {
  kNop = 0,
  kAdd, kSub, kAnd, kOr, kXor, kSlt, kShl, kShr,   // reg-reg ALU
  kAddi, kAndi, kOri, kLui,                        // reg-imm ALU
  kMul, kDiv,                                      // complex ALU
  kLd, kSt,                                        // [rs1 + imm]
  kBeq, kBne, kBlt, kBge,                          // branch to label/imm
  kJmp,                                            // unconditional
  kHalt,
};

const char* to_string(Opcode op);

/// OpClass of an opcode (drives scheduling).
OpClass op_class(Opcode op);

/// One static instruction.
struct Instr {
  Opcode op = Opcode::kNop;
  int rd = kNoReg;
  int rs1 = kNoReg;
  int rs2 = kNoReg;
  i64 imm = 0;   ///< immediate; for branches/jumps, a *text index* target
};

/// A program: instruction list plus entry point.
class Program {
 public:
  void append(const Instr& ins) { text_.push_back(ins); }

  [[nodiscard]] std::size_t size() const { return text_.size(); }
  [[nodiscard]] const Instr& at(std::size_t idx) const { return text_[idx]; }
  [[nodiscard]] const std::vector<Instr>& text() const { return text_; }

  /// PC of instruction `idx`.
  [[nodiscard]] static Pc pc_of(std::size_t idx) {
    return kTextBase + static_cast<Pc>(idx) * kInstrBytes;
  }
  /// Text index of `pc`; throws when out of range or misaligned.
  [[nodiscard]] std::size_t index_of(Pc pc) const;

 private:
  std::vector<Instr> text_;
};

}  // namespace vasim::isa

#endif  // VASIM_ISA_PROGRAM_HPP
