// Ablation studies on design choices the paper calls out:
//  1. Criticality Threshold sweep (Section 3.5.2: "a CT of 8 gives the best
//     outcome") on the CDS-friendly workload.
//  2. TEP geometry sweep (table size / history bits).
//  3. Recovery model comparison: squash-refetch vs RazorII-style micro
//     stall for unpredicted faults.
//  4. Sensor gating on/off (Section 2.1.1's thermal/voltage gating).
#include "bench/bench_util.hpp"

using namespace vasim;

int main() {
  core::RunnerConfig rc = bench::runner_config_from_env();
  rc.instructions = env_u64("VASIM_INSTR", 100'000);
  bench::print_run_header("Ablations: CT sweep, TEP geometry, recovery model, sensor gating",
                          rc);
  const auto libq = workload::spec2006_profile("libquantum");
  const auto bzip2 = workload::spec2006_profile("bzip2");

  {
    TextTable t({"CT", "CDS perf-ovh% (libquantum @0.97V)", "TEP accuracy"});
    for (const int ct : {2, 4, 8, 12, 16}) {
      core::RunnerConfig c = rc;
      core::ExperimentRunner runner(c);
      cpu::SchemeConfig cds = cpu::scheme_cds();
      cds.criticality_threshold = ct;
      const core::RunResult ff = runner.run_fault_free(libq, 0.97);
      const core::RunResult r = runner.run(libq, cds, 0.97);
      t.add_row({std::to_string(ct), TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                 TextTable::fmt(r.predictor_accuracy, 3)});
    }
    std::cout << t.render("Ablation 1: Criticality Threshold (paper: CT = 8 best)") << "\n";
  }

  {
    TextTable t({"entries", "hist-bits", "ABS perf-ovh% (bzip2 @0.97V)", "TEP accuracy"});
    for (const int entries : {256, 1024, 4096}) {
      for (const int hist : {0, 8}) {
        core::RunnerConfig c = rc;
        c.tep.entries = entries;
        c.tep.history_bits = hist;
        core::ExperimentRunner runner(c);
        const core::RunResult ff = runner.run_fault_free(bzip2, 0.97);
        const core::RunResult r = runner.run(bzip2, cpu::scheme_abs(), 0.97);
        t.add_row({std::to_string(entries), std::to_string(hist),
                   TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                   TextTable::fmt(r.predictor_accuracy, 3)});
      }
    }
    std::cout << t.render("Ablation 2: TEP geometry (Section 2.1.1)") << "\n";
  }

  {
    TextTable t({"recovery", "Razor perf-ovh% (bzip2 @0.97V)", "replays"});
    core::ExperimentRunner runner(rc);
    const core::RunResult ff = runner.run_fault_free(bzip2, 0.97);
    for (const auto rec : {cpu::RecoveryModel::kSquashRefetch, cpu::RecoveryModel::kMicroStall}) {
      cpu::SchemeConfig razor = cpu::scheme_razor();
      razor.recovery = rec;
      const core::RunResult r = runner.run(bzip2, razor, 0.97);
      t.add_row({rec == cpu::RecoveryModel::kSquashRefetch ? "squash-refetch" : "micro-stall",
                 TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 2),
                 TextTable::fmt(r.replays, 0)});
    }
    std::cout << t.render("Ablation 3: replay recovery model (Section 2.1.2)") << "\n";
  }

  {
    // VTE benefit vs machine width: narrower machines have less slack to
    // hide the faulty instruction's extra cycle.
    TextTable t({"width", "EP perf-ovh%", "ABS perf-ovh%", "ABS/EP"});
    for (const int width : {2, 4, 8}) {
      core::RunnerConfig c = rc;
      c.core.issue_width = width;
      c.core.fetch_width = width;
      c.core.dispatch_width = width;
      c.core.commit_width = width;
      c.core.simple_alus = width / 2;
      core::ExperimentRunner runner(c);
      const core::RunResult ff = runner.run_fault_free(bzip2, 0.97);
      const core::RunResult ep = runner.run(bzip2, cpu::scheme_error_padding(), 0.97);
      const core::RunResult abs = runner.run(bzip2, cpu::scheme_abs(), 0.97);
      const double oep = core::overhead_vs(ff, ep).perf_pct;
      const double oabs = core::overhead_vs(ff, abs).perf_pct;
      t.add_row({std::to_string(width), TextTable::fmt(oep, 2), TextTable::fmt(oabs, 2),
                 TextTable::fmt(bench::normalized_to_ep(oabs, oep), 3)});
    }
    std::cout << t.render("Ablation 5: machine width (bzip2 @0.97V)") << "\n";
  }

  {
    // Prefetching shrinks memory slack: does the VTE's hidden cycle emerge?
    TextTable t({"prefetch", "FF IPC", "ABS perf-ovh% (libquantum @0.97V)"});
    for (const bool pf : {false, true}) {
      core::RunnerConfig c = rc;
      c.core.l2_next_line_prefetch = pf;
      core::ExperimentRunner runner(c);
      const core::RunResult ff = runner.run_fault_free(libq, 0.97);
      const core::RunResult abs = runner.run(libq, cpu::scheme_abs(), 0.97);
      t.add_row({pf ? "on" : "off", TextTable::fmt(ff.ipc, 3),
                 TextTable::fmt(core::overhead_vs(ff, abs).perf_pct, 3)});
    }
    std::cout << t.render("Ablation 6: next-line prefetch vs architectural slack") << "\n";
  }

  {
    // Energy cost of mispredicted-path execution (unmodeled in the
    // baseline): how much does wrong-path work inflate ED overheads?
    TextTable t({"wrong-path", "FF IPC (gcc)", "razor ED-ovh% @0.97V"});
    for (const bool wp : {false, true}) {
      core::RunnerConfig c = rc;
      c.core.model_wrong_path = wp;
      core::ExperimentRunner runner(c);
      const auto gcc = workload::spec2006_profile("gcc");
      const core::RunResult ff = runner.run_fault_free(gcc, 0.97);
      const core::RunResult r = runner.run(gcc, cpu::scheme_razor(), 0.97);
      t.add_row({wp ? "on" : "off", TextTable::fmt(ff.ipc, 3),
                 TextTable::fmt(core::overhead_vs(ff, r).ed_pct, 2)});
    }
    std::cout << t.render("Ablation 7: wrong-path execution energy") << "\n";
  }

  {
    TextTable t({"sensor-gating", "EP perf-ovh% (bzip2 @0.97V)", "TEP accuracy", "false-pos"});
    for (const bool gating : {true, false}) {
      core::RunnerConfig c = rc;
      c.tep.sensor_gating = gating;
      core::ExperimentRunner runner(c);
      const core::RunResult ff = runner.run_fault_free(bzip2, 0.97);
      const core::RunResult r = runner.run(bzip2, cpu::scheme_error_padding(), 0.97);
      t.add_row({gating ? "on" : "off", TextTable::fmt(core::overhead_vs(ff, r).perf_pct, 3),
                 TextTable::fmt(r.predictor_accuracy, 3),
                 std::to_string(r.stats.count("fault.false_positive"))});
    }
    std::cout << t.render("Ablation 4: thermal/voltage sensor gating (Section 2.1.1)") << "\n";
  }
  return 0;
}
