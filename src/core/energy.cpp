#include "src/core/energy.hpp"

namespace vasim::core {

EnergyReport EnergyModel::compute(const StatSet& stats, double vdd) const {
  const auto c = [&](const char* name) { return static_cast<double>(stats.count(name)); };

  double pj = 0.0;
  pj += c("ev.fetch") * params_.fetch;
  pj += c("ev.dispatch") * params_.dispatch;
  pj += c("ev.iq_write") * params_.iq_write;
  pj += c("ev.select") * params_.select;
  pj += c("ev.regread") * params_.regread;
  pj += c("ev.broadcast") * params_.broadcast;
  pj += c("ev.fu.alu") * params_.fu_alu;
  pj += c("ev.fu.mul") * params_.fu_mul;
  pj += c("ev.fu.div") * params_.fu_div;
  pj += c("ev.fu.branch") * params_.fu_branch;
  pj += c("ev.fu.mem") * params_.fu_mem;
  pj += c("ev.lsq_search") * params_.lsq_search;
  pj += (c("ev.dcache_read") + c("ev.dcache_write")) * params_.dcache;
  // L2 is accessed on every L1 miss; memory on every L2 miss.
  pj += (c("cache.l1i.misses") + c("cache.l1d.misses")) * params_.l2;
  pj += c("cache.l2.misses") * params_.memory;
  pj += c("ev.commit") * params_.commit;
  pj += c("ev.squash") * params_.squash;
  pj += c("ev.stall_cycles") * params_.stall_recirculate;

  EnergyReport r;
  const double cycles = c("cycles");
  r.dynamic_nj = pj * 1e-3 * vm_.dynamic_energy_scale(vdd);
  r.leakage_nj = cycles * params_.leakage_per_cycle * 1e-3 * vm_.leakage_power_scale(vdd);
  r.edp = r.total_nj() * cycles;
  return r;
}

}  // namespace vasim::core
