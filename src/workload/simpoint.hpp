// SimPoint-style representative-phase selection.
//
// Section 4.2 focuses architectural simulation on representative phases
// extracted with the SimPoint toolset [20].  This is the same pipeline in
// miniature: slice the dynamic stream into fixed-length intervals, build
// basic-block vectors (BBVs), random-project them, k-means cluster, and pick
// the interval closest to each centroid, weighted by cluster population.
#ifndef VASIM_WORKLOAD_SIMPOINT_HPP
#define VASIM_WORKLOAD_SIMPOINT_HPP

#include <vector>

#include "src/isa/dyninst.hpp"

namespace vasim::workload {

/// Clustering configuration.
struct SimPointConfig {
  u64 interval_len = 10'000;  ///< instructions per interval
  int num_intervals = 100;    ///< intervals to sample
  int clusters = 4;           ///< k in k-means
  int projected_dims = 16;    ///< random-projection dimensionality
  int kmeans_iters = 25;
  u64 seed = 42;
};

/// One chosen representative phase.
struct Phase {
  int interval_index = 0;  ///< which interval represents the cluster
  double weight = 0.0;     ///< fraction of intervals in the cluster
};

/// Result of phase selection.
struct SimPointResult {
  std::vector<Phase> phases;        ///< one per non-empty cluster
  std::vector<int> assignment;      ///< cluster id per interval
  int intervals_analyzed = 0;
};

/// Consumes up to interval_len * num_intervals instructions from `source`
/// and selects representative phases.
SimPointResult select_phases(isa::InstructionSource& source, const SimPointConfig& cfg = {});

}  // namespace vasim::workload

#endif  // VASIM_WORKLOAD_SIMPOINT_HPP
