#include "src/cpu/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/isa/program.hpp"

namespace vasim::cpu {
namespace {

constexpr std::size_t kFrontendCap = 64;

}  // namespace

Pipeline::Pipeline(const CoreConfig& cfg, const SchemeConfig& scheme,
                   isa::InstructionSource* source, const timing::FaultModel* fault_model,
                   FaultPredictor* predictor)
    : cfg_(cfg), scheme_(scheme), source_(source), fault_model_(fault_model),
      predictor_(predictor), memory_(cfg), bpred_(cfg), fus_(cfg) {
  if (cfg_.phys_regs < isa::kNumArchRegs + cfg_.dispatch_width) {
    throw std::invalid_argument("Pipeline: too few physical registers");
  }
  rename_map_.resize(isa::kNumArchRegs);
  for (int a = 0; a < isa::kNumArchRegs; ++a) rename_map_[static_cast<std::size_t>(a)] = a;
  free_list_.reserve(static_cast<std::size_t>(cfg_.phys_regs));
  for (int p = cfg_.phys_regs - 1; p >= isa::kNumArchRegs; --p) free_list_.push_back(p);
  phys_ready_.assign(static_cast<std::size_t>(cfg_.phys_regs), 1);
  due_.reserve(static_cast<std::size_t>(2 * cfg_.issue_width + 8));
  cand_.reserve(static_cast<std::size_t>(cfg_.rob_entries));
}

bool Pipeline::faults_enabled() const { return fault_model_ != nullptr && fault_model_->enabled(); }

Pipeline::InstState* Pipeline::find(SeqNum seq) {
  if (window_.empty() || seq < head_seq_) return nullptr;
  const u64 off = seq - head_seq_;
  if (off >= window_.size()) return nullptr;
  return &window_[static_cast<std::size_t>(off)];
}

void Pipeline::schedule(Cycle cycle, EventKind kind, SeqNum seq) {
  // `cycle >= now_ >= event_shift_` always holds (the shift only grows by
  // one per stall cycle, and every stall cycle also advances now_), so the
  // stored key never underflows.
  event_buckets_[cycle - event_shift_].push_back(Event{cycle, kind, seq});
}

Cycle Pipeline::stage_offset(timing::OooStage stage, Cycle exec_lat) const {
  switch (stage) {
    case timing::OooStage::kIssueSelect: return 0;
    case timing::OooStage::kRegRead: return 1;
    case timing::OooStage::kExecute: return 2;
    case timing::OooStage::kMemory: return 3;
    case timing::OooStage::kWriteback: return exec_lat + 1;
  }
  return 0;
}

void Pipeline::shift_all_times(Cycle delta) {
  event_shift_ += delta;  // all pending events move as one
  for (FetchedInst& fi : frontend_) fi.arrive += delta;
  fus_.shift_time(delta);
  fetch_stall_until_ += delta;
}

void Pipeline::train_predictor(const InstState& is, bool faulty) {
  if (predictor_ == nullptr || !scheme_.use_predictor) return;
  predictor_->train(is.di.pc, is.tep_history, faulty, is.actual_stage);
}

// ---- events ---------------------------------------------------------------

void Pipeline::broadcast(InstState& is) {
  stats_.inc("ev.broadcast");
  if (is.phys_dst == kNoReg) return;
  phys_ready_[static_cast<std::size_t>(is.phys_dst)] = 1;
  // CDL (Section 3.5.2): count waiting dependents that match this tag.
  int deps = 0;
  for (const InstState& w : window_) {
    if (!w.in_iq || w.issued) continue;
    if (w.phys_src1 == is.phys_dst || w.phys_src2 == is.phys_dst) ++deps;
  }
  if (deps > 0) stats_.inc("ev.wakeup_match", static_cast<u64>(deps));
  if (predictor_ != nullptr && scheme_.use_predictor) {
    predictor_->mark_critical(is.di.pc, is.tep_history,
                              deps >= scheme_.criticality_threshold);
  }
}

void Pipeline::process_events() {
  // Pop the buckets due this cycle; later buckets are untouched.
  due_.clear();
  while (!event_buckets_.empty()) {
    const auto it = event_buckets_.begin();
    if (it->first + event_shift_ > now_) break;
    due_.insert(due_.end(), it->second.begin(), it->second.end());
    event_buckets_.erase(it);
  }
  // Deterministic order: broadcasts, completes, EP stalls, replays; then age.
  std::sort(due_.begin(), due_.end(), [](const Event& a, const Event& b) {
    if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.seq < b.seq;
  });

  for (const Event& e : due_) {
    switch (e.kind) {
      case EventKind::kBroadcast: {
        InstState* is = find(e.seq);
        if (is != nullptr) broadcast(*is);
        break;
      }
      case EventKind::kComplete: {
        InstState* is = find(e.seq);
        if (is == nullptr) break;
        is->completed = true;
        if (observer_ != nullptr) observer_->on_complete(e.seq);
        if (fetch_blocked_on_ && *fetch_blocked_on_ == e.seq) {
          fetch_blocked_on_.reset();
          if (cfg_.model_wrong_path) squash_younger(e.seq, /*refetch_true_path=*/false);
        }
        // Detection-based training (Razor latches observe every transit).
        if (is->actual_fault && is->fault_handled) {
          train_predictor(*is, true);
        } else if (is->pred_fault && !is->actual_fault) {
          train_predictor(*is, false);  // decay stale predictions
        }
        break;
      }
      case EventKind::kEpStall: {
        if (find(e.seq) != nullptr) {
          ++stall_pending_;
          stats_.inc("ep.stalls");
        }
        break;
      }
      case EventKind::kReplay:
        do_replay(e.seq);
        break;
    }
  }
}

void Pipeline::do_replay(SeqNum seq) {
  InstState* is = find(seq);
  if (is == nullptr || !is->replay_scheduled) return;
  stats_.inc("fault.replays");
  train_predictor(*is, true);

  if (scheme_.recovery == RecoveryModel::kMicroStall) {
    // RazorII-style in-place replay: the stage recomputes while the pipeline
    // holds; the instruction's own events shift with the stall.
    stall_pending_ += static_cast<int>(scheme_.micro_stall_cycles);
    is->replay_scheduled = false;
    is->safe_mode = true;
    return;
  }

  // Squash-and-refetch: flush [seq, tail] plus the front end, restore the
  // rename map youngest-first, and refetch with the faulty instance marked
  // safe (the recovery executes it with a guaranteed-sufficient period).
  const Pc faulty_pc = is->di.pc;
  squash_younger(seq - 1, /*refetch_true_path=*/true);
  if (!refetch_.empty() && refetch_.front().di.pc == faulty_pc) {
    refetch_.front().safe_mode = true;
  }
  fetch_stall_until_ = std::max(fetch_stall_until_, now_ + static_cast<Cycle>(cfg_.replay_recovery));
}

void Pipeline::squash_younger(SeqNum last_kept, bool refetch_true_path) {
  // Collect true-path work for refetch; wrong-path work is discarded.
  std::vector<RefetchInst> re;
  u64 squashed = 0;
  SeqNum youngest = last_kept;
  for (u64 off = 0; off < window_.size(); ++off) {
    const SeqNum wseq = head_seq_ + off;
    if (wseq <= last_kept) continue;
    const InstState& w = window_[static_cast<std::size_t>(off)];
    ++squashed;
    youngest = wseq;
    if (refetch_true_path && !w.wrong_path) re.push_back(RefetchInst{w.di, false});
  }
  for (const FetchedInst& fi : frontend_) {
    ++squashed;
    youngest = fi.seq;
    if (refetch_true_path && !fi.wrong_path) re.push_back(RefetchInst{fi.di, false});
  }
  frontend_.clear();

  while (!window_.empty()) {
    InstState& w = window_.back();
    const SeqNum wseq = head_seq_ + window_.size() - 1;
    if (wseq <= last_kept) break;
    if (w.phys_dst != kNoReg) {
      rename_map_[static_cast<std::size_t>(w.di.dst)] = w.old_phys;
      free_list_.push_back(w.phys_dst);
    }
    if (w.in_iq) --iq_count_;
    if (w.di.op == isa::OpClass::kLoad) --lq_count_;
    if (w.di.op == isa::OpClass::kStore) --sq_count_;
    window_.pop_back();
  }
  stats_.inc("ev.squash", squashed);
  if (observer_ != nullptr && squashed > 0) observer_->on_squash(last_kept + 1, youngest);

  // Seq numbers above `last_kept` are recycled, so stale events for squashed
  // instructions must not fire on their successors.
  for (auto it = event_buckets_.begin(); it != event_buckets_.end();) {
    std::erase_if(it->second, [last_kept](const Event& e) { return e.seq > last_kept; });
    it = it->second.empty() ? event_buckets_.erase(it) : std::next(it);
  }
  next_seq_ = last_kept + 1;

  refetch_.insert(refetch_.begin(), re.begin(), re.end());
  wrong_path_active_ = false;
  if (fetch_blocked_on_ && *fetch_blocked_on_ > last_kept) fetch_blocked_on_.reset();
}

isa::DynInst Pipeline::synthesize_wrong_path(Pc pc) {
  // Plausible wrong-path filler: mostly ALU with some loads into the warm
  // region; consumes rename/issue/execute resources and pollutes the D-cache
  // but never the architectural state (squashed at branch resolution).
  isa::DynInst d;
  const u64 h = hash_mix(pc ^ 0x3b0a6ULL);
  d.pc = pc;
  d.next_pc = pc + isa::kInstrBytes;
  d.src1 = 1 + static_cast<int>(h % 24);
  d.dst = 1 + static_cast<int>((h >> 8) % 24);
  if ((h & 0xFF) < 77) {  // ~30% loads
    d.op = isa::OpClass::kLoad;
    d.mem_addr = (0x0800'0000ULL + (h % (128 * 1024))) & ~7ULL;
  } else {
    d.op = isa::OpClass::kIntAlu;
    d.src2 = 1 + static_cast<int>((h >> 16) % 24);
  }
  return d;
}

// ---- commit ----------------------------------------------------------------

void Pipeline::commit_stage() {
  int budget = cfg_.commit_width;
  while (budget > 0 && committed_ < commit_limit_ && !window_.empty() &&
         window_.front().completed) {
    InstState& is = window_.front();
    if (is.retire_fault && !is.retire_padded) {
      // Retire-stage violation: the stage takes two cycles for this
      // instruction; with a predictor this is a planned stall, without one a
      // Razor replay of the retire transit.
      is.retire_padded = true;
      if (scheme_.use_predictor) {
        stats_.inc("fault.inorder.stall");
      } else {
        stats_.inc("fault.inorder.replay");
        stall_pending_ += static_cast<int>(scheme_.micro_stall_cycles) - 1;
      }
      break;  // retire loses the rest of this cycle
    }
    if (is.di.op == isa::OpClass::kStore) {
      memory_.store_commit(is.di.mem_addr);
      --sq_count_;
      stats_.inc("ev.dcache_write");
    }
    if (is.di.op == isa::OpClass::kLoad) --lq_count_;
    if (is.phys_dst != kNoReg && is.old_phys != kNoReg) free_list_.push_back(is.old_phys);
    // Committed-path fault rate (Table 1's FR): an instruction counts when
    // its committed instance faulted or it is the safe re-execution of one.
    if (is.actual_fault || is.safe_mode) stats_.inc("fault.committed_faulty");
    ++committed_;
    if (observer_ != nullptr) observer_->on_commit(head_seq_);
    stats_.inc("ev.commit");
    window_.pop_front();
    ++head_seq_;
    --budget;
    last_commit_cycle_ = now_;
  }
}

// ---- issue -----------------------------------------------------------------

bool Pipeline::operands_ready(const InstState& is) const {
  const bool r1 = is.phys_src1 == kNoReg || phys_ready_[static_cast<std::size_t>(is.phys_src1)] != 0;
  const bool r2 = is.phys_src2 == kNoReg || phys_ready_[static_cast<std::size_t>(is.phys_src2)] != 0;
  return r1 && r2;
}

bool Pipeline::load_may_issue(const InstState& load, bool* forwarded) {
  // Idealized disambiguation: store addresses are known from the trace, so
  // only a genuinely conflicting older store gates the load.  The youngest
  // matching store decides: once it has issued (data available in the store
  // queue), the load forwards from it; before that the load waits.
  *forwarded = false;
  const SeqNum load_seq = load.di.seq;
  bool ok = true;
  for (const InstState& w : window_) {
    if (w.di.seq >= load_seq) break;
    if (w.di.op != isa::OpClass::kStore) continue;
    if ((w.di.mem_addr & ~7ULL) != (load.di.mem_addr & ~7ULL)) continue;
    if (w.issued) {
      *forwarded = true;
      ok = true;
    } else {
      ok = false;
    }
  }
  if (!ok) *forwarded = false;
  return ok;
}

void Pipeline::select_stage() {
  int width = cfg_.issue_width - slots_frozen_now_;
  if (width <= 0) return;

  std::vector<InstState*>& cand = cand_;
  cand.clear();
  for (InstState& is : window_) {
    if (!is.in_iq || is.issued || !operands_ready(is)) continue;
    if (mem_blocked_now_ && isa::is_mem(is.di.op)) continue;
    cand.push_back(&is);
  }
  const auto age_of = [](const InstState* p) { return p->age; };
  switch (scheme_.policy) {
    case SelectPolicy::kAge:
      std::sort(cand.begin(), cand.end(),
                [&](auto* a, auto* b) { return age_of(a) < age_of(b); });
      break;
    case SelectPolicy::kFaultyFirst:
      std::sort(cand.begin(), cand.end(), [&](auto* a, auto* b) {
        if (a->pred_fault != b->pred_fault) return a->pred_fault;
        return age_of(a) < age_of(b);
      });
      break;
    case SelectPolicy::kCriticalityDriven:
      std::sort(cand.begin(), cand.end(), [&](auto* a, auto* b) {
        const bool ca = a->pred_fault && a->pred_critical;
        const bool cb = b->pred_fault && b->pred_critical;
        if (ca != cb) return ca;
        return age_of(a) < age_of(b);
      });
      break;
  }

  int issued = 0;
  for (InstState* p : cand) {
    if (width == 0) break;
    if (p->di.op == isa::OpClass::kLoad) {
      bool fwd = false;
      if (!load_may_issue(*p, &fwd)) continue;
    }
    const u64 before = stats_.count("ev.select");
    issue_one(*p);
    if (stats_.count("ev.select") != before) {
      --width;
      ++issued;
    }
  }
  // Utilization diagnostics (consumed by tests and the ablation bench).
  if (cand.empty()) {
    stats_.inc("sel.cycles_no_ready");
  } else if (issued == 0) {
    stats_.inc("sel.cycles_blocked");
  }
  stats_.inc("sel.issued_total", static_cast<u64>(issued));
  stats_.inc("sel.iq_occupancy_sum", static_cast<u64>(iq_count_));
  stats_.inc("sel.window_sum", window_.size());
  stats_.inc("sel.frontend_sum", frontend_.size());
}

void Pipeline::issue_one(InstState& is) {
  // Execution latency by class.
  Cycle exec_lat = 1;
  switch (is.di.op) {
    case isa::OpClass::kIntMul: exec_lat = cfg_.mul_latency; break;
    case isa::OpClass::kIntDiv: exec_lat = cfg_.div_latency; break;
    case isa::OpClass::kLoad: {
      bool fwd = false;
      (void)load_may_issue(is, &fwd);
      stats_.inc("ev.lsq_search");
      if (fwd) {
        exec_lat = 2;  // store-to-load forward
        stats_.inc("ev.stl_forward");
      } else {
        exec_lat = 1 + memory_.load_latency(is.di.mem_addr);
        stats_.inc("ev.dcache_read");
      }
      break;
    }
    case isa::OpClass::kStore:
      stats_.inc("ev.lsq_search");
      break;
    default:
      break;
  }

  // Fault oracle (Section 4.3) -- decided as the instruction engages the
  // OoO stages.
  if (faults_enabled() && !is.safe_mode && !is.wrong_path) {
    const timing::FaultDecision d = fault_model_->query(
        is.di.pc, isa::is_mem(is.di.op) ? timing::FaultClass::kMemLike
                                        : timing::FaultClass::kAluLike,
        now_);
    is.actual_fault = d.faulty;
    is.actual_stage = d.stage;
  }

  // VTE: predicted-faulty instructions take one extra cycle in their faulty
  // stage and freeze the resource they occupy (Sections 3.2-3.3).  The
  // freeze is per functional unit / port ("freeze the corresponding issue
  // slot for the functional unit or memory port", Sec 3.3.1): the unit the
  // instruction uses cannot accept a new instruction the following cycle.
  // Only a writeback-stage fault freezes an issue-queue input slot
  // (Sec 3.3.5), costing one slot of global width.
  Cycle lat_delta = 0;
  bool fu_extra = false;
  bool wb_slot_freeze = false;
  if (scheme_.vte && is.pred_fault) {
    lat_delta = 1;
    if (is.pred_stage == timing::OooStage::kWriteback) {
      wb_slot_freeze = true;
    } else {
      fu_extra = true;
    }
  }
  if (is.safe_mode) lat_delta += 1;  // replayed instance runs padded

  const int fu = fus_.allocate(is.di.op, now_, exec_lat + lat_delta, fu_extra);
  if (fu < 0) return;  // structural hazard; retry next cycle
  if (wb_slot_freeze) ++slots_frozen_next_;
  // LSQ CAM spacing (Sec 3.3.4): no load/store may perform a CAM search in
  // the cycle right behind a predicted-faulty memory-stage instruction.
  if (scheme_.vte && is.pred_fault && is.pred_stage == timing::OooStage::kMemory) {
    mem_blocked_next_ = true;
  }

  is.issued = true;
  is.in_iq = false;
  --iq_count_;
  if (observer_ != nullptr) observer_->on_issue(is.di.seq, is.pred_fault);
  stats_.inc("ev.select");
  stats_.inc("ev.regread");
  switch (fus_.kind_of(fu)) {
    case FuKind::kSimpleAlu: stats_.inc("ev.fu.alu"); break;
    case FuKind::kComplexAlu:
      stats_.inc(is.di.op == isa::OpClass::kIntDiv ? "ev.fu.div" : "ev.fu.mul");
      break;
    case FuKind::kBranch: stats_.inc("ev.fu.branch"); break;
    case FuKind::kLoadPort:
    case FuKind::kStorePort: stats_.inc("ev.fu.mem"); break;
  }

  const Cycle wakeup = now_ + exec_lat + lat_delta;
  schedule(wakeup, EventKind::kBroadcast, is.di.seq);
  schedule(wakeup + 1, EventKind::kComplete, is.di.seq);

  // Error Padding: one global stall cycle as the instruction transits its
  // predicted-faulty stage.
  if (scheme_.error_padding && is.pred_fault) {
    schedule(now_ + stage_offset(is.pred_stage, exec_lat), EventKind::kEpStall, is.di.seq);
  }

  if (is.actual_fault) {
    stats_.inc("fault.actual");
    stats_.inc(std::string("fault.stage.") + std::string(timing::to_string(is.actual_stage)));
    const bool covered = is.pred_fault && is.pred_stage == is.actual_stage &&
                         (scheme_.vte || scheme_.error_padding);
    if (covered) {
      is.fault_handled = true;
      stats_.inc("fault.handled");
    } else {
      is.replay_scheduled = true;
      schedule(wakeup + 1, EventKind::kReplay, is.di.seq);
    }
  }
  if (is.pred_fault) stats_.inc("fault.predicted");
  if (is.pred_fault && !is.actual_fault) stats_.inc("fault.false_positive");
  if (scheme_.use_predictor && !is.pred_fault && is.actual_fault) {
    stats_.inc("fault.false_negative");
  }
}

// ---- dispatch ----------------------------------------------------------------

void Pipeline::dispatch_stage() {
  int budget = cfg_.dispatch_width;
  while (budget > 0 && !frontend_.empty() && frontend_.front().arrive <= now_) {
    FetchedInst& fi = frontend_.front();
    if (static_cast<int>(window_.size()) >= cfg_.rob_entries) break;
    if (iq_count_ >= cfg_.iq_entries) break;
    const bool is_load = fi.di.op == isa::OpClass::kLoad;
    const bool is_store = fi.di.op == isa::OpClass::kStore;
    if (is_load && lq_count_ >= cfg_.lq_entries) break;
    if (is_store && sq_count_ >= cfg_.sq_entries) break;
    if (fi.di.dst != kNoReg && free_list_.empty()) break;

    InstState is;
    is.di = fi.di;
    is.di.seq = fi.seq;
    is.age = age_counter_++;
    is.tep_history = fi.history;
    is.safe_mode = fi.safe_mode;
    is.retire_fault = fi.retire_fault;
    is.wrong_path = fi.wrong_path;
    is.pred_fault = fi.pred.predicted;
    is.pred_stage = fi.pred.stage;
    is.pred_critical = fi.pred.critical;
    if (is.di.src1 != kNoReg) is.phys_src1 = rename_map_[static_cast<std::size_t>(is.di.src1)];
    if (is.di.src2 != kNoReg) is.phys_src2 = rename_map_[static_cast<std::size_t>(is.di.src2)];
    if (is.di.dst != kNoReg) {
      is.old_phys = rename_map_[static_cast<std::size_t>(is.di.dst)];
      is.phys_dst = free_list_.back();
      free_list_.pop_back();
      rename_map_[static_cast<std::size_t>(is.di.dst)] = is.phys_dst;
      phys_ready_[static_cast<std::size_t>(is.phys_dst)] = 0;
    }
    is.in_iq = true;
    ++iq_count_;
    if (is_load) ++lq_count_;
    if (is_store) ++sq_count_;

    if (window_.empty()) head_seq_ = fi.seq;
    if (observer_ != nullptr) observer_->on_dispatch(fi.seq);
    window_.push_back(std::move(is));
    frontend_.pop_front();
    --budget;
    stats_.inc("ev.dispatch");
    stats_.inc("ev.iq_write");
  }
}

// ---- fetch ---------------------------------------------------------------------

void Pipeline::fetch_stage() {
  if (now_ < fetch_stall_until_) return;
  if (fetch_blocked_on_.has_value()) {
    if (!cfg_.model_wrong_path || !wrong_path_active_) return;
    // Keep fetching down the predicted (wrong) path until the branch
    // resolves; this work is squashed, never committed.
    int wp_budget = cfg_.fetch_width;
    while (wp_budget > 0 && frontend_.size() < kFrontendCap) {
      FetchedInst fi;
      fi.di = synthesize_wrong_path(wrong_path_pc_);
      wrong_path_pc_ += isa::kInstrBytes;
      fi.seq = next_seq_++;
      fi.wrong_path = true;
      fi.arrive = now_ + static_cast<Cycle>(cfg_.frontend_depth);
      fi.history = bpred_.history();
      stats_.inc("ev.fetch");
      stats_.inc("ev.wrongpath_fetch");
      if (observer_ != nullptr) observer_->on_fetch(fi.seq, fi.di);
      frontend_.push_back(std::move(fi));
      --wp_budget;
    }
    return;
  }
  int budget = cfg_.fetch_width;
  while (budget > 0 && frontend_.size() < kFrontendCap) {
    RefetchInst ri;
    if (!refetch_.empty()) {
      ri = refetch_.front();
      refetch_.pop_front();
    } else {
      if (source_done_) break;
      if (!source_->next(ri.di)) {
        source_done_ = true;
        break;
      }
    }

    FetchedInst fi;
    fi.di = ri.di;
    fi.safe_mode = ri.safe_mode;
    fi.seq = next_seq_++;
    stats_.inc("ev.fetch");

    const Cycle il = memory_.ifetch_latency(fi.di.pc);
    const Cycle extra = il > cfg_.l1i.latency ? il - cfg_.l1i.latency : 0;
    fi.arrive = now_ + extra + static_cast<Cycle>(cfg_.frontend_depth);

    // TEP lookup in parallel with decode (Section 2.1.1).
    fi.history = bpred_.history();
    if (scheme_.use_predictor && predictor_ != nullptr && faults_enabled()) {
      fi.pred = predictor_->predict(fi.di.pc, fi.history, now_);
    }

    // In-order engine faults (Section 2.2): rename/dispatch/retire use the
    // TEP-driven stall signal (the faulty stage completes in two cycles
    // while its inputs recirculate); fetch/decode faults always replay.
    if (scheme_.inorder_fault_scale > 0.0 && faults_enabled()) {
      const timing::InOrderFaultDecision iod =
          fault_model_->query_inorder(fi.di.pc, now_, scheme_.inorder_fault_scale);
      if (iod.faulty) {
        switch (iod.stage) {
          case timing::InOrderStage::kFetch:
          case timing::InOrderStage::kDecode: {
            stats_.inc("fault.inorder.replay");
            const Cycle recovery = static_cast<Cycle>(cfg_.replay_recovery);
            fetch_stall_until_ = std::max(fetch_stall_until_, now_ + recovery);
            fi.arrive += recovery;
            break;
          }
          case timing::InOrderStage::kRename:
          case timing::InOrderStage::kDispatch:
            if (scheme_.use_predictor) {
              stats_.inc("fault.inorder.stall");
              fi.arrive += 1;  // stage completes in two cycles, inputs recirculate
            } else {
              stats_.inc("fault.inorder.replay");
              stall_pending_ += static_cast<int>(scheme_.micro_stall_cycles);
            }
            break;
          case timing::InOrderStage::kRetire:
            fi.retire_fault = true;
            break;
        }
      }
    }

    bool blocked = false;
    if (fi.di.op == isa::OpClass::kBranch) {
      const BranchPrediction bp = bpred_.predict(fi.di.pc);
      const bool mispred = bp.taken != fi.di.taken ||
                           (fi.di.taken && (!bp.target_known || bp.target != fi.di.next_pc));
      bpred_.update(fi.di.pc, fi.di.taken, fi.di.next_pc);
      if (mispred) {
        bpred_.note_mispredict();
        stats_.inc("branch.mispredict");
        fetch_blocked_on_ = fi.seq;
        blocked = true;
        if (cfg_.model_wrong_path) {
          wrong_path_active_ = true;
          wrong_path_pc_ = bp.taken && bp.target_known ? bp.target : fi.di.pc + isa::kInstrBytes;
        }
      }
    }
    if (observer_ != nullptr) observer_->on_fetch(fi.seq, fi.di);
    frontend_.push_back(std::move(fi));
    --budget;
    if (blocked) break;
    if (extra > 0) {
      fetch_stall_until_ = now_ + extra;
      break;
    }
  }
}

// ---- main loop -------------------------------------------------------------------

void Pipeline::apply_global_stall() {
  --stall_pending_;
  shift_all_times(1);
  stats_.inc("ev.stall_cycles");
}

bool Pipeline::step() {
  if (source_done_ && window_.empty() && frontend_.empty() && refetch_.empty()) return false;

  if (stall_pending_ > 0) {
    apply_global_stall();
    ++now_;
    return true;
  }

  slots_frozen_now_ = slots_frozen_next_;
  slots_frozen_next_ = 0;
  mem_blocked_now_ = mem_blocked_next_;
  mem_blocked_next_ = false;

  if (observer_ != nullptr) observer_->on_cycle(now_);
  process_events();
  commit_stage();
  select_stage();
  dispatch_stage();
  fetch_stage();

  ++now_;
  if (!window_.empty() && now_ - last_commit_cycle_ > cfg_.watchdog_cycles) {
    throw std::runtime_error("Pipeline deadlock: no commit in watchdog window");
  }
  return true;
}

PipelineResult Pipeline::run(u64 max_committed, u64 warmup_committed) {
  // Snapshot helper: cumulative stats including cache/bpred counters.
  const auto snapshot = [this]() {
    StatSet s = stats_;
    memory_.export_stats(s);
    s.inc("branch.lookups", bpred_.lookups());
    s.inc("branch.mispredicts_total", bpred_.mispredicts());
    s.inc("cycles", now_);
    return s;
  };

  StatSet base;
  u64 base_committed = 0;
  Cycle base_cycles = 0;
  if (warmup_committed > 0) {
    commit_limit_ = warmup_committed;
    while (committed_ < warmup_committed && step()) {
    }
    base = snapshot();
    base_committed = committed_;
    base_cycles = now_;
  }

  const u64 target = warmup_committed + max_committed;
  commit_limit_ = target;
  while (committed_ < target && step()) {
  }

  PipelineResult r;
  r.committed = committed_ - base_committed;
  r.cycles = now_ - base_cycles;
  r.stats = snapshot().diff(base);
  r.stats.set("ipc", r.committed == 0 || r.cycles == 0
                         ? 0.0
                         : static_cast<double>(r.committed) / static_cast<double>(r.cycles));
  return r;
}

// ---- scheme factories ---------------------------------------------------------

SchemeConfig scheme_fault_free() {
  SchemeConfig s;
  s.name = "fault-free";
  return s;
}

SchemeConfig scheme_razor() {
  SchemeConfig s;
  s.name = "razor";
  s.use_predictor = false;
  return s;
}

// All factory schemes recover unpredicted faults with the RazorII-style
// in-place replay (Section 2.1.2); squash-refetch remains available through
// SchemeConfig::recovery and is compared in bench_ablation.

SchemeConfig scheme_error_padding() {
  SchemeConfig s;
  s.name = "ep";
  s.use_predictor = true;
  s.error_padding = true;
  return s;
}

SchemeConfig scheme_abs() {
  SchemeConfig s;
  s.name = "abs";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kAge;
  return s;
}

SchemeConfig scheme_ffs() {
  SchemeConfig s;
  s.name = "ffs";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kFaultyFirst;
  return s;
}

SchemeConfig scheme_cds() {
  SchemeConfig s;
  s.name = "cds";
  s.use_predictor = true;
  s.vte = true;
  s.policy = SelectPolicy::kCriticalityDriven;
  return s;
}

}  // namespace vasim::cpu
