
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_verilog_roundtrip.cpp" "tests/CMakeFiles/test_verilog_roundtrip.dir/test_verilog_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_verilog_roundtrip.dir/test_verilog_roundtrip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vasim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vasim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vasim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vasim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vasim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vasim_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vasim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
