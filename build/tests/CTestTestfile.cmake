# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_circuit_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_circuit_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_components[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_circuit_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_observer[1]_include.cmake")
include("/root/repo/build/tests/test_inorder[1]_include.cmake")
include("/root/repo/build/tests/test_verilog_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_program_fuzz[1]_include.cmake")
