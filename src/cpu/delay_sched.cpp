// Cold paths of the delay-tracking scheduler kernel (construction, squash
// filtering, serialization); the per-cycle hot paths stay inline in
// delay_sched.hpp.
#include "src/cpu/delay_sched.hpp"

#include <vector>

namespace vasim::cpu {

void DelayQueue::init(Arena& a, u32 cap_pow2, u32 buckets_pow2, u32 pool_cap, u32 num_phys) {
  mask_ = buckets_pow2 - 1;
  pool_cap_ = pool_cap;
  cap_ = cap_pow2;
  num_phys_ = num_phys;
  pool_ = a.alloc<Node>(pool_cap);
  heads_ = a.alloc<i32>(buckets_pow2);
  max_seq_ = a.alloc<SeqNum>(buckets_pow2);
  state_ = a.alloc<u8>(cap_pow2);
  due_ = a.alloc<Cycle>(cap_pow2);
  queued_seq_ = a.alloc<SeqNum>(cap_pow2);
  est_ready_ = a.alloc<Cycle>(num_phys);
  ready_.init(a.alloc<u32>(cap_pow2), cap_pow2);
  for (u32 b = 0; b < buckets_pow2; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 s = 0; s < cap_pow2; ++s) {
    state_[s] = kNone;
    due_[s] = 0;
    queued_seq_[s] = 0;
  }
  for (u32 p = 0; p < num_phys; ++p) est_ready_[p] = 0;
  for (u32 i = 0; i < pool_cap; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap - 1].next = -1;
  free_ = 0;
  next_pop_ = 0;
}

void DelayQueue::pop_due(Cycle stored_now, IssueWindow& win) {
  next_pop_ = stored_now + 1;
  const u32 b = static_cast<u32>(stored_now) & mask_;
  i32 idx = heads_[b];
  heads_[b] = -1;
  max_seq_[b] = 0;
  while (idx >= 0) {
    const Node n = pool_[idx];
    recycle(idx);
    idx = n.next;
    const u32 slot = win.slot_of(n.seq);
    // Staleness gate: a re-file (wake repair) or a recycled slot leaves
    // behind nodes whose (seq, due) no longer match the slot's current key.
    if (state_[slot] != kQueued || queued_seq_[slot] != n.seq || due_[slot] != n.due) continue;
    InstState* is = win.find(n.seq);
    if (is == nullptr || is->issued) {  // defensive; squash filtering keeps this dead
      state_[slot] = kNone;
      continue;
    }
    if (win.pending_of(slot) == 0) {
      state_[slot] = kReady;
      ready_.push_back(slot);
      continue;
    }
    // The estimate fired early (e.g. a load producer missed the cache).
    // Repair from the producers' estimates -- exact once a producer has
    // issued -- or park until the resolving broadcast re-files the entry.
    Cycle again = 0;
    if (is->phys_src1 != kNoReg && est_ready_[is->phys_src1] > again) {
      again = est_ready_[is->phys_src1];
    }
    if (is->phys_src2 != kNoReg && est_ready_[is->phys_src2] > again) {
      again = est_ready_[is->phys_src2];
    }
    if (again > stored_now) {
      file(slot, n.seq, again);
    } else {
      state_[slot] = kParked;
    }
  }
}

void DelayQueue::filter_squashed(SeqNum last_kept, const IssueWindow& win) {
  (void)win;
  // Ready FIFO: drop squashed slots in place, preserving order.
  const u32 n = ready_.size();
  for (u32 i = 0; i < n; ++i) {
    const u32 slot = ready_.front();
    ready_.pop_front();
    if (queued_seq_[slot] > last_kept) {
      state_[slot] = kNone;
      continue;
    }
    ready_.push_back(slot);
  }
  // Buckets: same link surgery as EventWheel::filter_squashed, preserving
  // survivor order.  Buckets whose max seq is old enough are skipped.
  for (u32 b = 0; b <= mask_; ++b) {
    if (heads_[b] < 0 || max_seq_[b] <= last_kept) continue;
    SeqNum maxs = 0;
    i32* link = &heads_[b];
    while (*link >= 0) {
      Node& node = pool_[*link];
      if (node.seq > last_kept) {
        const u32 slot = static_cast<u32>(node.seq) & (cap_ - 1);
        if (queued_seq_[slot] == node.seq) state_[slot] = kNone;
        const i32 dead = *link;
        *link = node.next;
        recycle(dead);
      } else {
        if (node.seq > maxs) maxs = node.seq;
        link = &node.next;
      }
    }
    max_seq_[b] = maxs;
  }
}

void DelayQueue::clear_entries() {
  for (u32 b = 0; b <= mask_; ++b) {
    heads_[b] = -1;
    max_seq_[b] = 0;
  }
  for (u32 s = 0; s < cap_; ++s) state_[s] = kNone;
  ready_.clear();
  for (u32 i = 0; i < pool_cap_; ++i) pool_[i].next = static_cast<i32>(i) + 1;
  pool_[pool_cap_ - 1].next = -1;
  free_ = 0;
}

void DelayQueue::save_state(snap::Writer& w) const {
  w.put_u64(next_pop_);
  // Filed nodes, written tail-first per bucket so the restoring file()
  // prepends them back into the original list order (pop order is
  // observable: it decides ready-FIFO append order).
  u32 count = 0;
  for (u32 b = 0; b <= mask_; ++b) {
    for (i32 idx = heads_[b]; idx >= 0; idx = pool_[idx].next) ++count;
  }
  w.put_u32(count);
  std::vector<i32> chain;
  for (u32 b = 0; b <= mask_; ++b) {
    if (heads_[b] < 0) continue;
    chain.clear();
    for (i32 idx = heads_[b]; idx >= 0; idx = pool_[idx].next) chain.push_back(idx);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      w.put_u64(pool_[*it].due);
      w.put_u64(pool_[*it].seq);
    }
  }
  // Per-slot keys and states, verbatim (stale keys participate in the
  // staleness gate, so bit-identical continuation preserves them exactly).
  w.put_u32(cap_);
  for (u32 s = 0; s < cap_; ++s) {
    w.put_u8(state_[s]);
    w.put_u64(due_[s]);
    w.put_u64(queued_seq_[s]);
  }
  w.put_u32(ready_.size());
  for (u32 i = 0; i < ready_.size(); ++i) w.put_u32(ready_.at(i));
  w.put_u32(num_phys_);
  for (u32 p = 0; p < num_phys_; ++p) w.put_u64(est_ready_[p]);
}

void DelayQueue::restore_state(snap::Reader& r) {
  clear_entries();
  next_pop_ = r.get_u64();
  const u32 count = r.get_u32();
  if (count > pool_cap_) throw snap::SnapshotError("delay queue pool overflow on restore");
  for (u32 i = 0; i < count; ++i) {
    const Cycle due = r.get_u64();
    const SeqNum seq = r.get_u64();
    if (due < next_pop_ || due - next_pop_ > mask_) {
      throw snap::SnapshotError("delay queue entry outside wheel horizon");
    }
    file(static_cast<u32>(seq) & (cap_ - 1), seq, due);
  }
  if (r.get_u32() != cap_) throw snap::SnapshotError("delay queue capacity mismatch");
  for (u32 s = 0; s < cap_; ++s) {
    const u8 st = r.get_u8();
    if (st > kParked) throw snap::SnapshotError("bad delay queue slot state");
    state_[s] = st;
    due_[s] = r.get_u64();
    queued_seq_[s] = r.get_u64();
  }
  const u32 nready = r.get_u32();
  if (nready > cap_) throw snap::SnapshotError("delay queue ready list overflow on restore");
  for (u32 i = 0; i < nready; ++i) {
    const u32 slot = r.get_u32();
    if (slot >= cap_) throw snap::SnapshotError("delay queue ready slot out of range");
    ready_.push_back(slot);
  }
  if (r.get_u32() != num_phys_) throw snap::SnapshotError("delay queue phys-reg count mismatch");
  for (u32 p = 0; p < num_phys_; ++p) est_ready_[p] = r.get_u64();
}

}  // namespace vasim::cpu
