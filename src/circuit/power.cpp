#include "src/circuit/power.hpp"

namespace vasim::circuit {

PowerReport& PowerReport::operator+=(const PowerReport& o) {
  area_um2 += o.area_um2;
  dynamic_power_uw += o.dynamic_power_uw;
  leakage_power_uw += o.leakage_power_uw;
  gate_count += o.gate_count;
  flop_count += o.flop_count;
  return *this;
}

PowerReport roll_up(const Component& component, const PowerConditions& cond) {
  PowerReport r;
  for (const Gate& g : component.netlist.gates()) {
    if (g.kind == GateKind::kInput || g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) {
      continue;
    }
    const CellInfo& ci = cell_info(g.kind);
    r.area_um2 += ci.area_um2;
    // fJ * GHz = uW.
    r.dynamic_power_uw += ci.energy_fj * cond.activity * cond.frequency_ghz;
    r.leakage_power_uw += ci.leakage_nw * 1e-3;
    ++r.gate_count;
  }
  const CellInfo& ff = cell_info(GateKind::kDff);
  r.area_um2 += ff.area_um2 * component.flop_count;
  r.dynamic_power_uw += ff.energy_fj * cond.flop_activity * cond.frequency_ghz * component.flop_count;
  r.leakage_power_uw += ff.leakage_nw * 1e-3 * component.flop_count;
  r.flop_count += component.flop_count;
  return r;
}

PowerReport roll_up(std::span<const Component> components, const PowerConditions& cond) {
  PowerReport total;
  for (const Component& c : components) total += roll_up(c, cond);
  return total;
}

OverheadReport overhead(const PowerReport& baseline, const PowerReport& enhanced) {
  OverheadReport o;
  if (baseline.area_um2 > 0) o.area = enhanced.area_um2 / baseline.area_um2 - 1.0;
  if (baseline.dynamic_power_uw > 0) {
    o.dynamic_power = enhanced.dynamic_power_uw / baseline.dynamic_power_uw - 1.0;
  }
  if (baseline.leakage_power_uw > 0) {
    o.leakage_power = enhanced.leakage_power_uw / baseline.leakage_power_uw - 1.0;
  }
  return o;
}

}  // namespace vasim::circuit
