// Unit tests for src/common: rng, stats, table, env.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "src/common/env.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"

namespace vasim {
namespace {

TEST(HashMix, DeterministicAndDispersive) {
  EXPECT_EQ(hash_mix(42), hash_mix(42));
  EXPECT_NE(hash_mix(42), hash_mix(43));
  // Nearby inputs must land far apart (avalanche-ish).
  std::set<u64> seen;
  for (u64 i = 0; i < 1000; ++i) seen.insert(hash_mix(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashMix, UnitIntervalInRange) {
  for (u64 i = 0; i < 10000; ++i) {
    const double u = hash_to_unit(hash_mix(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashMix, UnitIntervalRoughlyUniform) {
  int buckets[10] = {};
  const int n = 100000;
  for (u64 i = 0; i < n; ++i) {
    ++buckets[static_cast<int>(hash_to_unit(hash_mix(i)) * 10)];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 100) << "bucket " << b;
  }
}

TEST(HashMix, GaussianMoments) {
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (u64 i = 0; i < n; ++i) {
    const double g = hash_to_gaussian(hash_mix(i ^ 0xabcdULL));
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32, DeterministicStreams) {
  Pcg32 a(1, 2), b(1, 2), c(1, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  bool differs = false;
  Pcg32 a2(1, 2);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u32() != c.next_u32());
  EXPECT_TRUE(differs);
}

TEST(Pcg32, NextBelowUnbiasedEdges) {
  Pcg32 r(7);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(10), 10u);
}

TEST(Pcg32, DoublesInUnitInterval) {
  Pcg32 r(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, GaussianMoments) {
  Pcg32 r(1234);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(r.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Pcg32, BernoulliRate) {
  Pcg32 r(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(StatSet, CountersAndScalars) {
  StatSet s;
  EXPECT_EQ(s.count("x"), 0u);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.count("x"), 5u);
  s.set("pi", 3.14);
  EXPECT_DOUBLE_EQ(s.scalar("pi"), 3.14);
  EXPECT_DOUBLE_EQ(s.scalar("absent"), 0.0);
}

TEST(StatSet, DiffSubtractsCounters) {
  StatSet a, b;
  a.inc("x", 10);
  a.inc("y", 3);
  a.set("s", 2.0);
  b.inc("x", 4);
  const StatSet d = a.diff(b);
  EXPECT_EQ(d.count("x"), 6u);
  EXPECT_EQ(d.count("y"), 3u);
  EXPECT_DOUBLE_EQ(d.scalar("s"), 2.0);
}

TEST(StatSet, DiffClampsAtZero) {
  StatSet a, b;
  a.inc("x", 2);
  b.inc("x", 5);
  EXPECT_EQ(a.diff(b).count("x"), 0u);
}

TEST(Histogram, MeanStddevQuantile) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_NEAR(h.mean(), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.1);
  EXPECT_NEAR(h.min(), 0.5, 1e-9);
  EXPECT_NEAR(h.max(), 9.5, 1e-9);
}

TEST(Histogram, OutOfRangeGoesToOverflowBins) {
  Histogram h(0, 10, 5);
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_NEAR(h.mean(), 47.5, 1e-9);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  EXPECT_NEAR(s.stddev(), 29.0115, 1e-3);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(TextTable, RenderAlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2"});
  const std::string out = t.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("VASIM_TEST_ENV");
  EXPECT_EQ(env_u64("VASIM_TEST_ENV", 7), 7u);
  ::setenv("VASIM_TEST_ENV", "123", 1);
  EXPECT_EQ(env_u64("VASIM_TEST_ENV", 7), 123u);
  ::setenv("VASIM_TEST_ENV", "junk", 1);
  EXPECT_EQ(env_u64("VASIM_TEST_ENV", 7), 7u);
  EXPECT_EQ(env_str("VASIM_TEST_ENV", "d"), "junk");
  ::unsetenv("VASIM_TEST_ENV");
}

}  // namespace
}  // namespace vasim
