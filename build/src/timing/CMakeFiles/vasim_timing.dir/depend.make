# Empty dependencies file for vasim_timing.
# This may be replaced when dependencies are built.
