# Empty compiler generated dependencies file for vasim_cli.
# This may be replaced when dependencies are built.
